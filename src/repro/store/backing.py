"""The persistent, content-addressed design-result store.

Entries are keyed by a SHA-256 digest over everything that determines
an evaluation result:

- the design's canonical :meth:`~repro.tiling.design.StencilDesign.signature`,
- the **evaluation context**: the full board spec (including the FPGA
  part's capacities), the model fidelity, and the FlexCL pipeline
  parameters,
- the on-disk schema version (:data:`~repro.store.index.STORE_SCHEMA`).

Recalibrating the model, changing the board, or bumping the schema
therefore changes the key — stale entries become unreachable instead
of being silently served, and ``gc``/``invalidate`` exist to reclaim
them.

:class:`DesignStore` is the concrete implementation (journal + snapshot
under one directory, see :mod:`repro.store.index`); the
:class:`BackingStore` protocol is what the
:class:`~repro.dse.evaluator.CandidateEvaluator` consults on a memo
miss and writes through on every fresh evaluation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
import re
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Union

try:  # pragma: no cover - version dispatch
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 has no Protocol
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro import obs
from repro.errors import StoreError
from repro.fpga.estimator import DesignResources
from repro.fpga.flexcl import FlexCLEstimator
from repro.fpga.resources import ResourceVector
from repro.model.predictor import Fidelity
from repro.opencl.platform import BoardSpec
from repro.store.index import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    STORE_SCHEMA,
    compact,
    load_snapshot,
    merge_entries,
    write_snapshot,
)
from repro.store.journal import (
    Journal,
    canonical_json,
    read_journal_tolerant,
    replay_latest,
)
from repro.tiling.design import StencilDesign

PathLike = Union[str, pathlib.Path]

#: Writer names become journal filenames: must start with a letter or
#: digit (no dot-names), stay within one path segment, and fit 64
#: chars.
_WRITER_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


def digest(value) -> str:
    """SHA-256 hex digest of a value's canonical JSON encoding."""
    return hashlib.sha256(
        canonical_json(value).encode("utf-8")
    ).hexdigest()


def evaluation_context(
    board: BoardSpec,
    fidelity: Fidelity,
    flexcl: FlexCLEstimator,
) -> str:
    """Fingerprint of everything besides the design that shapes results.

    Covers every board/model parameter the predictor and resource
    estimator read, so two evaluators with equal contexts are
    guaranteed to produce interchangeable results for equal designs.
    """
    return digest(
        {
            "schema": STORE_SCHEMA,
            "board": dataclasses.asdict(board),
            "fidelity": fidelity.value,
            "flexcl": {"max_partitions": flexcl.max_partitions},
        }
    )


def design_key(design_signature, context: str) -> str:
    """Content address of one (design, evaluation-context) result."""
    return digest(
        {
            "schema": STORE_SCHEMA,
            "ctx": context,
            "design": design_signature,
        }
    )


@dataclass(frozen=True)
class StoredResult:
    """One store entry decoded for the evaluator.

    Either field may be absent: the prediction-only path
    (``predict_cycles``) stores cycles without resources, and the full
    ``evaluate`` path later upgrades the same entry in place.
    """

    cycles: Optional[float] = None
    resources: Optional[DesignResources] = None

    @property
    def complete(self) -> bool:
        """True when both the prediction and the estimate are present."""
        return self.cycles is not None and self.resources is not None


@runtime_checkable
class BackingStore(Protocol):
    """What the evaluator needs from a persistent result store."""

    def lookup_design(
        self, design: StencilDesign, context: str
    ) -> Optional[StoredResult]:
        """Return the stored result for a design, or ``None``."""
        ...  # pragma: no cover - protocol

    def record_design(
        self,
        design: StencilDesign,
        context: str,
        cycles: Optional[float] = None,
        resources: Optional[DesignResources] = None,
    ) -> None:
        """Write (or upgrade) a design's result."""
        ...  # pragma: no cover - protocol


def _resources_to_json(resources: DesignResources) -> Dict:
    return resources.as_dict()


def _resources_from_json(data) -> DesignResources:
    try:
        return DesignResources(
            total=ResourceVector(**data["total"]),
            kernels=ResourceVector(**data["kernels"]),
            pipes=ResourceVector(**data["pipes"]),
        )
    except (KeyError, TypeError) as exc:
        raise StoreError(
            f"Malformed resources payload in store entry: {exc}"
        ) from exc


class DesignStore:
    """Directory-backed persistent result store.

    Layout: ``root/journal.jsonl`` (append-only write path) plus
    ``root/snapshot.jsonl`` (compacted state).  Opening replays both;
    a torn journal tail is repaired automatically (see
    :mod:`repro.store.journal`).  All methods are thread-safe — the
    evaluator's parallel batch path calls :meth:`lookup_design` and
    :meth:`record_design` concurrently from pool workers.

    **Multi-writer mode.** Pass a distinct ``writer`` name per process
    to share one store directory across service replicas: each writer
    appends only to its own ``journal-<writer>.jsonl``, so concurrent
    processes never interleave bytes in one file.  Opening replays the
    snapshot, the writer's own journal (with tail repair), and every
    sibling journal — tolerantly, because a sibling's torn tail is
    just its live write frontier, not corruption (see
    :func:`~repro.store.journal.read_journal_tolerant`).  Entries are
    content-addressed, so sibling records merge by completeness
    instead of needing a global write order.  :meth:`compact`,
    :meth:`gc`, and :meth:`invalidate` fold sibling journals into the
    snapshot and delete them — offline maintenance, only safe with
    all other writers stopped.

    Args:
        root: store directory (created if missing).
        sync: journal fsync policy (``batch``/``always``/``never``).
        batch_size: journal writes are buffered and flushed as one
            fsynced batch every this many records (and on
            :meth:`flush`/:meth:`close`).  A crash loses at most the
            buffered tail — which is recomputed, never corrupted.
        writer: name of this writer's private journal in a shared
            store directory; ``None`` (the default) keeps the classic
            single-writer ``journal.jsonl`` layout.
    """

    def __init__(
        self,
        root: PathLike,
        sync: str = "batch",
        batch_size: int = 32,
        writer: Optional[str] = None,
    ):
        if batch_size < 1:
            raise StoreError(f"batch_size must be >= 1, got {batch_size}")
        if writer is not None and not _WRITER_RE.match(writer):
            raise StoreError(
                f"Invalid writer name {writer!r} "
                "(use letters, digits, '.', '_', '-')"
            )
        self.root = pathlib.Path(root)
        self.batch_size = batch_size
        self.writer = writer
        self._lock = threading.Lock()
        self._pending = []
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidated = 0
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"Cannot create store directory {self.root}: {exc}"
            ) from exc
        journal_name = (
            JOURNAL_NAME if writer is None else f"journal-{writer}.jsonl"
        )
        with obs.span("store.open", root=str(self.root)):
            self._entries = load_snapshot(self.root / SNAPSHOT_NAME)
            self._journal = Journal(self.root / journal_name, sync=sync)
            self._entries.update(replay_latest(self._journal.records()))
            for sibling in self._sibling_journals():
                merge_entries(
                    self._entries, read_journal_tolerant(sibling)
                )
        obs.set_gauge("store.entries", len(self._entries))

    def _sibling_journals(self):
        """Journal files in this store owned by *other* writers."""
        own = self._journal.path
        return [
            path
            for path in sorted(self.root.glob("journal*.jsonl"))
            if path != own
        ]

    # -- evaluator-facing API ---------------------------------------------------

    def lookup_design(
        self, design: StencilDesign, context: str
    ) -> Optional[StoredResult]:
        """Decode the stored result for ``design`` under ``context``."""
        with obs.span("store.lookup"):
            return self._lookup_design(design, context)

    def _lookup_design(
        self, design: StencilDesign, context: str
    ) -> Optional[StoredResult]:
        key = design_key(design.signature(), context)
        with self._lock:
            entry = self._entries.get(key)
        if entry is None or entry.get("v") != STORE_SCHEMA:
            with self._lock:
                self.misses += 1
            obs.inc("store.misses")
            return None
        resources = entry.get("resources")
        with self._lock:
            self.hits += 1
        obs.inc("store.hits")
        return StoredResult(
            cycles=entry.get("cycles"),
            resources=(
                _resources_from_json(resources)
                if resources is not None
                else None
            ),
        )

    def record_design(
        self,
        design: StencilDesign,
        context: str,
        cycles: Optional[float] = None,
        resources: Optional[DesignResources] = None,
    ) -> None:
        """Write through one result, merging with any existing entry."""
        if cycles is None and resources is None:
            return
        key = design_key(design.signature(), context)
        record = {
            "key": key,
            "v": STORE_SCHEMA,
            "ctx": context,
            "cycles": cycles,
            "resources": (
                _resources_to_json(resources)
                if resources is not None
                else None
            ),
        }
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.get("v") == STORE_SCHEMA:
                if record["cycles"] is None:
                    record["cycles"] = existing.get("cycles")
                if record["resources"] is None:
                    record["resources"] = existing.get("resources")
                if (
                    existing.get("cycles") == record["cycles"]
                    and existing.get("resources") == record["resources"]
                ):
                    return  # nothing new to persist
            self._entries[key] = record
            self._pending.append(record)
            self.writes += 1
            flush_now = len(self._pending) >= self.batch_size
            batch = self._pending if flush_now else None
            if flush_now:
                self._pending = []
        obs.inc("store.writes")
        obs.set_gauge("store.entries", len(self._entries))
        if batch:
            self._journal.append_batch(batch)

    # -- lifecycle --------------------------------------------------------------

    def flush(self) -> None:
        """Persist buffered writes (one fsynced journal batch)."""
        with self._lock:
            batch, self._pending = self._pending, []
        with obs.span("store.flush", records=len(batch)):
            if batch:
                self._journal.append_batch(batch)
            else:
                self._journal.flush()

    def close(self) -> None:
        """Flush and release the journal handle."""
        self.flush()
        self._journal.close()

    def __enter__(self) -> "DesignStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- maintenance (the ``store`` CLI surface) --------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def recovered_drops(self) -> int:
        """Torn journal records dropped during this open."""
        return self._journal.recovered_drops

    def stats_summary(self) -> Dict:
        """Structured description of the store's state and counters."""
        with self._lock:
            entries = dict(self._entries)
            runtime = {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "invalidated": self.invalidated,
            }
        contexts: Dict[str, int] = {}
        complete = 0
        for entry in entries.values():
            contexts[entry.get("ctx", "?")] = (
                contexts.get(entry.get("ctx", "?"), 0) + 1
            )
            if (
                entry.get("cycles") is not None
                and entry.get("resources") is not None
            ):
                complete += 1
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA,
            "writer": self.writer,
            "sibling_journals": len(self._sibling_journals()),
            "entries": len(entries),
            "complete_entries": complete,
            "contexts": dict(sorted(contexts.items())),
            "journal_records": len(self._journal),
            "recovered_drops": self.recovered_drops,
            "runtime": runtime,
        }

    def compact(self) -> Dict:
        """Fold all journals into the snapshot; report the outcome.

        In multi-writer mode this also folds and deletes sibling
        journals — offline maintenance, only safe with the other
        writers stopped.
        """
        self.flush()
        with self._lock:
            folded, total = compact(
                self.root, self._journal, foreign=self._sibling_journals()
            )
        return {"journal_folded": folded, "snapshot_entries": total}

    def _rewrite(self, keep) -> int:
        """Keep only entries passing ``keep``; rewrite snapshot, empty journal."""
        self.flush()
        with self._lock:
            before = len(self._entries)
            self._entries = {
                key: entry
                for key, entry in self._entries.items()
                if keep(entry)
            }
            dropped = before - len(self._entries)
            write_snapshot(self.root / SNAPSHOT_NAME, self._entries)
            self._journal.truncate()
            # Sibling journals would resurrect dropped entries on the
            # next open; their surviving records are already in the
            # snapshot (merged at our open), so delete them.  Offline
            # maintenance — other writers must be stopped.
            for sibling in self._sibling_journals():
                try:
                    sibling.unlink()
                except OSError as exc:
                    raise StoreError(
                        f"Cannot remove sibling journal {sibling}: {exc}"
                    ) from exc
            self.invalidated += dropped
        obs.inc("store.invalidated", dropped)
        obs.set_gauge("store.entries", len(self._entries))
        return dropped

    def gc(self, keep_context: Optional[str] = None) -> int:
        """Drop unusable entries; return how many were dropped.

        Unusable means: written under another schema version, or
        (when ``keep_context`` is given) belonging to any other
        evaluation context — e.g. a board the deployment no longer
        evaluates against.
        """
        def keep(entry: dict) -> bool:
            if entry.get("v") != STORE_SCHEMA:
                return False
            if keep_context is not None and entry.get("ctx") != keep_context:
                return False
            return True

        return self._rewrite(keep)

    def invalidate(self, context: Optional[str] = None) -> int:
        """Drop entries of one evaluation context (or all of them)."""
        if context is None:
            return self._rewrite(lambda entry: False)
        return self._rewrite(
            lambda entry: entry.get("ctx") != context
        )
