"""Sweep checkpointing: resume long runs after a crash.

The design store makes *model* work durable; this module does the same
for the other half of an experiment sweep — simulator measurements and
any other per-step result a runner would hate to repay after a SIGKILL.

:class:`SweepCheckpoint` is a journal-backed ``key → JSON payload`` map
with one durability rule: a step is persisted (fsynced) before
:meth:`run` returns its value, so a step either completed durably or
will be re-run — never half-observed.  Resuming is therefore just
re-running the sweep: completed steps return their recorded payloads
(bit-identical, no recomputation), the interrupted step and everything
after it run normally.  Since payloads are the *values* the reports
render, an interrupted-then-resumed sweep produces byte-identical
output to an uninterrupted one.

:class:`CheckpointedExecutor` wraps the cycle simulator with that
contract for the two measurements the experiment tables consume
(total cycles, and the breakdown fractions of Figure 6).
"""

from __future__ import annotations

import pathlib
import threading
from typing import Callable, Dict, Optional, Tuple, Union

from repro import obs
from repro.errors import StoreError
from repro.opencl.platform import BoardSpec
from repro.sim.executor import SimulationExecutor
from repro.store.backing import digest
from repro.store.index import STORE_SCHEMA
from repro.store.journal import Journal, replay_latest
from repro.tiling.design import StencilDesign

PathLike = Union[str, pathlib.Path]

_MISSING = object()


class SweepCheckpoint:
    """Durable key → payload map for sweep steps.

    Args:
        path: the checkpoint journal file (created if missing; a torn
            tail from a previous crash is repaired on open).
        sync: journal fsync policy.  The default ``"always"`` fsyncs
            every step — checkpoint steps are orders of magnitude
            rarer than store writes, and each one must be durable
            before its value is acted on.
    """

    def __init__(self, path: PathLike, sync: str = "always"):
        self.path = pathlib.Path(path)
        self._journal = Journal(self.path, sync=sync)
        self._lock = threading.Lock()
        self._steps: Dict[str, dict] = replay_latest(
            self._journal.records()
        )

    @property
    def recovered_drops(self) -> int:
        """Torn records dropped while opening the checkpoint."""
        return self._journal.recovered_drops

    def __len__(self) -> int:
        with self._lock:
            return len(self._steps)

    def get(self, key: str, default=None):
        """The recorded payload for ``key``, or ``default``."""
        with self._lock:
            entry = self._steps.get(key)
        if entry is None or entry.get("v") != STORE_SCHEMA:
            return default
        return entry.get("payload")

    def put(self, key: str, payload) -> None:
        """Durably record one step result (fsynced before returning)."""
        record = {"key": key, "v": STORE_SCHEMA, "payload": payload}
        self._journal.append(record)
        with self._lock:
            self._steps[key] = record
        obs.inc("store.checkpoint_writes")

    def run(self, key: str, compute: Callable[[], object]):
        """Return the recorded payload for ``key``, computing it once.

        ``compute``'s return value must be JSON-serializable — it is
        exactly what a resumed sweep will be handed back.
        """
        with self._lock:
            entry = self._steps.get(key, _MISSING)
        if entry is not _MISSING and entry.get("v") == STORE_SCHEMA:
            obs.inc("store.checkpoint_hits")
            return entry.get("payload")
        obs.inc("store.checkpoint_misses")
        payload = compute()
        self.put(key, payload)
        return payload

    def flush(self) -> None:
        """Force an fsync of the underlying journal."""
        self._journal.flush()

    def close(self) -> None:
        """Flush and release the journal handle."""
        self._journal.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SearchCheckpoint:
    """Durable per-chunk survivor records for tiered searches.

    The :class:`~repro.dse.search.SearchDriver` enumerates candidates
    deterministically, so a search needs no cursor serialization to
    resume: it re-enumerates the stream and, for every chunk already
    recorded here, replays the chunk's surviving ``(local index,
    cycles, resources)`` triples instead of re-screening and
    re-scoring it.  The frontier they rebuild is exactly the one the
    interrupted run held (JSON round-trips floats exactly), so an
    interrupted-then-resumed sweep converges on the same best design
    and Pareto band as an uninterrupted one.

    Records are grouped under a caller-chosen search id; a ``meta``
    record written at :meth:`begin` pins the search configuration
    (budget, evaluation context, chunk size, screen mode, shard) and
    a mismatch on resume raises :class:`~repro.errors.StoreError`
    instead of silently mixing two different searches.

    Args:
        path: the checkpoint journal file (created if missing; a torn
            tail from a previous crash is repaired on open).
        sync: journal fsync policy, as in :class:`SweepCheckpoint`.
    """

    def __init__(self, path: PathLike, sync: str = "always"):
        self._sweep = SweepCheckpoint(path, sync=sync)
        self.path = self._sweep.path

    @property
    def recovered_drops(self) -> int:
        """Torn records dropped while opening the checkpoint."""
        return self._sweep.recovered_drops

    @staticmethod
    def _meta_key(search: str) -> str:
        return f"search:{search}:meta"

    @staticmethod
    def _chunk_key(search: str, index: int) -> str:
        return f"search:{search}:chunk:{index}"

    def begin(self, search: str, meta: dict) -> bool:
        """Open (or re-open) one search; returns True when resuming.

        Raises:
            StoreError: when ``search`` was begun with a different
                configuration fingerprint.
        """
        existing = self._sweep.get(self._meta_key(search))
        if existing is None:
            self._sweep.put(self._meta_key(search), meta)
            return False
        if existing != meta:
            raise StoreError(
                f"Search checkpoint {self.path} entry {search!r} was "
                f"recorded under a different configuration; use a new "
                f"search id (or checkpoint file) for a changed search"
            )
        return True

    def chunk(self, search: str, index: int):
        """The recorded payload for one chunk, or ``None``."""
        return self._sweep.get(self._chunk_key(search, index))

    def record_chunk(self, search: str, index: int, payload: dict) -> None:
        """Durably record one completed chunk (fsynced before return)."""
        self._sweep.put(self._chunk_key(search, index), payload)

    def flush(self) -> None:
        """Force an fsync of the underlying journal."""
        self._sweep.flush()

    def close(self) -> None:
        """Flush and release the journal handle."""
        self._sweep.close()

    def __enter__(self) -> "SearchCheckpoint":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class CheckpointedExecutor:
    """Cycle-simulator front door with durable measurement results.

    Without a checkpoint it is a plain pass-through to
    :class:`~repro.sim.executor.SimulationExecutor`; with one, each
    measurement is keyed on ``(operation, board, design signature)``
    and recomputed only when absent.

    ``sim_backend`` selects the value-execution backend the wrapped
    executor uses for :meth:`execute` (``"auto" | "numpy" | "jit"``;
    ``None`` defers to the process default / ``REPRO_SIM_BACKEND``).
    Value execution is *not* checkpointed — its result is the grids
    themselves, not a JSON-sized measurement.
    """

    def __init__(
        self,
        board: BoardSpec,
        checkpoint: Optional[SweepCheckpoint] = None,
        sim_backend: Optional[str] = None,
    ):
        self.board = board
        self.checkpoint = checkpoint
        self._executor = SimulationExecutor(board, backend=sim_backend)
        self._board_fp = digest(
            {
                "name": board.name,
                "clock_hz": board.clock_hz,
                "bandwidth_bytes_per_s": board.bandwidth_bytes_per_s,
                "kernel_launch_cycles": board.kernel_launch_cycles,
                "launch_stagger_cycles": board.launch_stagger_cycles,
                "pipe_cycles_per_word": board.pipe_cycles_per_word,
                "burst_efficiency": board.burst_efficiency,
            }
        )

    def _key(self, op: str, design: StencilDesign) -> str:
        return digest(
            {
                "op": op,
                "board": self._board_fp,
                "design": design.signature(),
            }
        )

    def _run(self, op: str, design: StencilDesign, compute):
        if self.checkpoint is None:
            return compute()
        return self.checkpoint.run(self._key(op, design), compute)

    def resolved_backend(self) -> str:
        """Concrete value-execution backend of the wrapped executor."""
        return self._executor.resolved_backend()

    def execute(
        self,
        design: StencilDesign,
        state=None,
        aux=None,
        iterations=None,
    ):
        """Value-level execution through the wrapped executor."""
        return self._executor.execute(design, state, aux, iterations)

    def total_cycles(self, design: StencilDesign) -> float:
        """Measured total cycles (checkpointed when enabled)."""
        return self._run(
            "sim.total_cycles",
            design,
            lambda: self._executor.run(design).total_cycles,
        )

    def breakdown(
        self, design: StencilDesign
    ) -> Tuple[float, Dict[str, float]]:
        """Measured ``(total cycles, breakdown fractions)`` pair."""
        def compute():
            result = self._executor.run(design)
            return [
                result.total_cycles,
                result.breakdown.fractions(),
            ]

        total, fractions = self._run("sim.breakdown", design, compute)
        if not isinstance(fractions, dict):
            raise StoreError(
                "Malformed breakdown payload in checkpoint "
                f"for design {design.describe()!r}"
            )
        return float(total), dict(fractions)
