"""Crash-safe append-only JSONL journal.

The durability primitive under the whole store: one record per line,
each line carrying a CRC-32 of its canonically-encoded payload, so a
torn write (process killed mid-``write``) or a bit flip in the tail is
*detected* rather than silently served back.  Recovery on open follows
the classic write-ahead-log rule:

- a valid prefix followed only by garbage is a **torn tail** — the
  journal is truncated back to the last good record and the drop is
  counted (and reported through the ``store.torn_dropped`` metric);
- an invalid record *followed by valid records* cannot be produced by
  an append-only writer dying mid-write, so it is treated as real
  corruption and raised as :class:`~repro.errors.StoreError`.

Durability policy is explicit: ``sync="batch"`` (the default) issues
one ``fsync`` per append batch, ``"always"`` syncs every record, and
``"never"`` leaves flushing to the OS (fine for caches that may be
rebuilt, wrong for checkpoints).

For crash testing, the environment variable ``REPRO_STORE_CRASH_AFTER=N``
arms a fault injector: the *N*-th appended record process-wide is
written only halfway (flushed, so the torn bytes reach the file) and
the process is SIGKILLed — a deterministic stand-in for pulling the
plug mid-write.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import threading
import zlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro import obs
from repro.errors import StoreError

PathLike = Union[str, pathlib.Path]

_SYNC_MODES = ("batch", "always", "never")

#: Environment variable arming the torn-write fault injector.
CRASH_ENV = "REPRO_STORE_CRASH_AFTER"

_crash_lock = threading.Lock()
_crash_appends = 0


def canonical_json(value) -> str:
    """Canonical (sorted-key, compact) JSON encoding of ``value``."""
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise StoreError(f"Record is not JSON-serializable: {exc}") from exc


def encode_record(data: dict) -> str:
    """One journal line: the payload wrapped with its CRC-32."""
    payload = canonical_json(data)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f'{{"crc":"{crc:08x}","data":{payload}}}'


def decode_record(line: str) -> Optional[dict]:
    """Parse one journal line; ``None`` when torn or corrupt."""
    try:
        wrapper = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(wrapper, dict) or set(wrapper) != {"crc", "data"}:
        return None
    payload = wrapper["data"]
    expect = wrapper["crc"]
    crc = zlib.crc32(canonical_json(payload).encode("utf-8")) & 0xFFFFFFFF
    if not isinstance(expect, str) or expect != f"{crc:08x}":
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def _crash_countdown() -> Optional[int]:
    value = os.environ.get(CRASH_ENV)
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        return None


def _maybe_crash(handle, line: str) -> bool:
    """Fault injector: tear the write and die when the countdown hits.

    Returns True when the record was written whole (the normal path);
    on the armed append it writes half the line, flushes, and SIGKILLs
    the process — the flush makes the torn bytes visible to the
    recovery scan of the next open.
    """
    global _crash_appends
    limit = _crash_countdown()
    if limit is None:
        return True
    with _crash_lock:
        _crash_appends += 1
        count = _crash_appends
    if count < limit:
        return True
    handle.write(line[: max(1, len(line) // 2)])
    handle.flush()
    os.kill(os.getpid(), signal.SIGKILL)
    return False  # pragma: no cover - unreachable


class Journal:
    """Append-only JSONL file with per-record CRC and tail recovery.

    Opening scans the whole file, validates every record, repairs a
    torn tail in place, and exposes the surviving records via
    :meth:`records`.  Appends go straight to the file handle; the
    ``sync`` policy controls when ``fsync`` is issued.
    """

    def __init__(self, path: PathLike, sync: str = "batch"):
        if sync not in _SYNC_MODES:
            raise StoreError(
                f"Unknown sync mode {sync!r} (choose from {_SYNC_MODES})"
            )
        self.path = pathlib.Path(path)
        self.sync = sync
        self._lock = threading.Lock()
        self._records: List[dict] = []
        self.recovered_drops = 0
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._recover()
            self._handle = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise StoreError(
                f"Cannot open journal {self.path}: {exc}"
            ) from exc

    # -- recovery ---------------------------------------------------------------

    def _recover(self) -> None:
        """Validate the on-disk file, truncating a torn tail."""
        if not self.path.exists():
            self.path.touch()
            return
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise StoreError(
                f"Cannot read journal {self.path}: {exc}"
            ) from exc
        good_end = 0
        records: List[dict] = []
        bad: List[str] = []
        offset = 0
        for chunk in raw.split(b"\n"):
            line = chunk.decode("utf-8", errors="replace")
            end = offset + len(chunk) + 1  # include the newline
            if chunk.strip():
                record = decode_record(line)
                if record is None:
                    bad.append(line)
                elif bad:
                    # Valid data past an invalid record: an append-only
                    # writer cannot produce this, so the file was
                    # damaged, not torn.
                    raise StoreError(
                        f"Journal {self.path} is corrupt: invalid record "
                        f"followed by {len(records)}+ valid ones"
                    )
                else:
                    records.append(record)
                    good_end = end
            offset = end
        self._records = records
        if bad:
            self.recovered_drops = len(bad)
            obs.inc("store.torn_dropped", len(bad))
            obs.get_logger("store").warning(
                "journal %s: dropped %d torn record(s) at tail",
                self.path,
                len(bad),
            )
            try:
                with open(self.path, "r+b") as handle:
                    handle.truncate(good_end)
            except OSError as exc:
                raise StoreError(
                    f"Cannot repair journal {self.path}: {exc}"
                ) from exc

    # -- reading ----------------------------------------------------------------

    def records(self) -> List[dict]:
        """All valid records, in append order (recovered + appended)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- writing ----------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one record (fsync per the journal's sync policy)."""
        self.append_batch([record])

    def append_batch(self, records: Iterable[dict]) -> None:
        """Append records as one batch: one write pass, one fsync."""
        records = list(records)
        if not records:
            return
        lines = [encode_record(r) for r in records]
        with self._lock:
            self._check_open()
            try:
                for record, line in zip(records, lines):
                    if not _maybe_crash(self._handle, line + "\n"):
                        return  # pragma: no cover - crash injector fired
                    self._handle.write(line + "\n")
                    self._records.append(record)
                    if self.sync == "always":
                        self._handle.flush()
                        os.fsync(self._handle.fileno())
                self._handle.flush()
                if self.sync == "batch":
                    os.fsync(self._handle.fileno())
            except OSError as exc:
                raise StoreError(
                    f"Cannot append to journal {self.path}: {exc}"
                ) from exc
        obs.inc("store.journal_appends", len(records))

    def flush(self) -> None:
        """Flush and fsync regardless of the sync policy."""
        with self._lock:
            self._check_open()
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as exc:
                raise StoreError(
                    f"Cannot flush journal {self.path}: {exc}"
                ) from exc

    def truncate(self) -> None:
        """Drop every record (used after compaction into a snapshot)."""
        with self._lock:
            self._check_open()
            try:
                self._handle.truncate(0)
                self._handle.seek(0)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as exc:
                raise StoreError(
                    f"Cannot truncate journal {self.path}: {exc}"
                ) from exc
            self._records = []

    def close(self) -> None:
        """Flush (with fsync unless ``sync="never"``) and close."""
        with self._lock:
            if self._handle is None:
                return
            try:
                self._handle.flush()
                if self.sync != "never":
                    os.fsync(self._handle.fileno())
                self._handle.close()
            except OSError as exc:
                raise StoreError(
                    f"Cannot close journal {self.path}: {exc}"
                ) from exc
            finally:
                self._handle = None

    def _check_open(self) -> None:
        if self._handle is None:
            raise StoreError(f"Journal {self.path} is closed")

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_journal_tolerant(path: PathLike) -> List[dict]:
    """Read another writer's journal without repairing or raising.

    Multi-writer stores (one journal file per service replica, see
    :class:`~repro.store.backing.DesignStore`) replay *sibling*
    journals at open while their writers may still be alive.  A torn
    tail therefore just marks the live write frontier: the valid prefix
    is returned and everything from the first invalid record on is
    ignored — never truncated, because the file belongs to another
    process.
    """
    target = pathlib.Path(path)
    if not target.exists():
        return []
    try:
        raw = target.read_bytes()
    except OSError as exc:
        raise StoreError(
            f"Cannot read journal {target}: {exc}"
        ) from exc
    records: List[dict] = []
    for chunk in raw.split(b"\n"):
        if not chunk.strip():
            continue
        record = decode_record(chunk.decode("utf-8", errors="replace"))
        if record is None:
            obs.get_logger("store").debug(
                "journal %s: stopped at in-flight/torn record "
                "(%d valid read)", target, len(records),
            )
            break
        records.append(record)
    return records


def replay_latest(records: Iterable[dict], key_field: str = "key") -> Dict:
    """Fold journal records into latest-record-per-key mapping.

    Records without the key field are ignored (forward compatibility:
    an older reader skips record kinds it does not understand).
    """
    latest: Dict[str, dict] = {}
    for record in records:
        key = record.get(key_field)
        if isinstance(key, str):
            latest[key] = record
    return latest


def write_atomic(path: PathLike, lines: Iterable[str]) -> None:
    """Write a file atomically: temp file + fsync + rename.

    A crash at any point leaves either the old file or the new one,
    never a mix — which is what lets snapshots skip per-record
    recovery.
    """
    target = pathlib.Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        dir_fd = os.open(target.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError as exc:
        raise StoreError(f"Cannot write {target}: {exc}") from exc


def read_snapshot_lines(path: PathLike) -> Tuple[List[dict], bool]:
    """Read an atomically-written snapshot file.

    Returns ``(records, exists)``.  Unlike the journal, a snapshot is
    never legitimately torn (it is replaced atomically), so any invalid
    record raises :class:`StoreError`.
    """
    target = pathlib.Path(path)
    if not target.exists():
        return [], False
    try:
        text = target.read_text(encoding="utf-8")
    except OSError as exc:
        raise StoreError(f"Cannot read snapshot {target}: {exc}") from exc
    records = []
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        record = decode_record(line)
        if record is None:
            raise StoreError(
                f"Snapshot {target} is corrupt at line {number}"
            )
        records.append(record)
    return records, True
