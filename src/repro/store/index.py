"""Indexed snapshots: the compacted form of a journal.

A store directory holds two files::

    journal.jsonl    append-only, one record per write (crash-safe)
    snapshot.jsonl   compacted latest-record-per-key state + header

The snapshot is written atomically (temp + fsync + rename), so it is
either entirely the old state or entirely the new one; the journal
then only needs to carry writes made *since* the last compaction.
Loading is ``snapshot ∪ journal-replay`` with journal records winning,
which makes the compaction sequence crash-safe at every step:

1. write the merged snapshot atomically;
2. truncate the journal.

A crash between 1 and 2 merely replays journal records that the new
snapshot already contains — the merge is idempotent.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple, Union

from repro import obs
from repro.errors import StoreError
from repro.store.journal import (
    Journal,
    encode_record,
    read_snapshot_lines,
    replay_latest,
    write_atomic,
)

PathLike = Union[str, pathlib.Path]

#: On-disk schema of the store directory layout and record shapes.
#: Bump on any incompatible change: entries written under another
#: version are never served (see ``DesignStore.gc``).
STORE_SCHEMA = "repro.store/1"

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.jsonl"


def load_snapshot(path: PathLike) -> Dict[str, dict]:
    """Load a snapshot file into a key → record mapping.

    The first record is the header (``schema``/``entries``); a header
    from a different schema version raises :class:`StoreError` rather
    than guessing at the layout.
    """
    records, exists = read_snapshot_lines(path)
    if not exists:
        return {}
    if not records:
        raise StoreError(f"Snapshot {path} is empty (missing header)")
    header, entries = records[0], records[1:]
    if header.get("schema") != STORE_SCHEMA:
        raise StoreError(
            f"Snapshot {path} has schema {header.get('schema')!r}, "
            f"expected {STORE_SCHEMA!r}"
        )
    declared = header.get("entries")
    if declared is not None and declared != len(entries):
        raise StoreError(
            f"Snapshot {path} declares {declared} entries "
            f"but holds {len(entries)}"
        )
    return replay_latest(entries)


def write_snapshot(path: PathLike, entries: Dict[str, dict]) -> None:
    """Atomically replace the snapshot with ``entries``.

    Entries are written in sorted-key order so equal states produce
    byte-identical snapshot files.
    """
    header = {"schema": STORE_SCHEMA, "entries": len(entries)}
    lines = [encode_record(header)]
    lines.extend(encode_record(entries[key]) for key in sorted(entries))
    write_atomic(path, lines)


def compact(store_dir: PathLike, journal: Journal) -> Tuple[int, int]:
    """Fold the journal into the snapshot; empty the journal.

    Returns ``(journal_records_folded, snapshot_entries_after)``.
    """
    store_dir = pathlib.Path(store_dir)
    snapshot_path = store_dir / SNAPSHOT_NAME
    with obs.span("store.compact"):
        entries = load_snapshot(snapshot_path)
        folded = journal.records()
        entries.update(replay_latest(folded))
        write_snapshot(snapshot_path, entries)
        journal.truncate()
    obs.inc("store.compactions")
    return len(folded), len(entries)
