"""Indexed snapshots: the compacted form of a journal.

A store directory holds two files::

    journal.jsonl    append-only, one record per write (crash-safe)
    snapshot.jsonl   compacted latest-record-per-key state + header

The snapshot is written atomically (temp + fsync + rename), so it is
either entirely the old state or entirely the new one; the journal
then only needs to carry writes made *since* the last compaction.
Loading is ``snapshot ∪ journal-replay`` with journal records winning,
which makes the compaction sequence crash-safe at every step:

1. write the merged snapshot atomically;
2. truncate the journal.

A crash between 1 and 2 merely replays journal records that the new
snapshot already contains — the merge is idempotent.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple, Union

from repro import obs
from repro.errors import StoreError
from repro.store.journal import (
    Journal,
    encode_record,
    read_journal_tolerant,
    read_snapshot_lines,
    replay_latest,
    write_atomic,
)

PathLike = Union[str, pathlib.Path]

#: On-disk schema of the store directory layout and record shapes.
#: Bump on any incompatible change: entries written under another
#: version are never served (see ``DesignStore.gc``).
STORE_SCHEMA = "repro.store/1"

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.jsonl"


def load_snapshot(path: PathLike) -> Dict[str, dict]:
    """Load a snapshot file into a key → record mapping.

    The first record is the header (``schema``/``entries``); a header
    from a different schema version raises :class:`StoreError` rather
    than guessing at the layout.
    """
    records, exists = read_snapshot_lines(path)
    if not exists:
        return {}
    if not records:
        raise StoreError(f"Snapshot {path} is empty (missing header)")
    header, entries = records[0], records[1:]
    if header.get("schema") != STORE_SCHEMA:
        raise StoreError(
            f"Snapshot {path} has schema {header.get('schema')!r}, "
            f"expected {STORE_SCHEMA!r}"
        )
    declared = header.get("entries")
    if declared is not None and declared != len(entries):
        raise StoreError(
            f"Snapshot {path} declares {declared} entries "
            f"but holds {len(entries)}"
        )
    return replay_latest(entries)


def write_snapshot(path: PathLike, entries: Dict[str, dict]) -> None:
    """Atomically replace the snapshot with ``entries``.

    Entries are written in sorted-key order so equal states produce
    byte-identical snapshot files.
    """
    header = {"schema": STORE_SCHEMA, "entries": len(entries)}
    lines = [encode_record(header)]
    lines.extend(encode_record(entries[key]) for key in sorted(entries))
    write_atomic(path, lines)


def merge_entries(target: Dict[str, dict], records) -> None:
    """Merge journal records into ``target`` with upgrade semantics.

    Journals from different writers have no global order, but store
    entries are content-addressed: two records under one key describe
    the same deterministic evaluation and can differ at most in
    completeness (prediction-only vs full).  Merging therefore fills
    missing fields instead of letting arbitrary file order win.
    """
    for record in records:
        key = record.get("key")
        if not isinstance(key, str):
            continue
        existing = target.get(key)
        if existing is not None and existing.get("v") == record.get("v"):
            merged = dict(record)
            if merged.get("cycles") is None:
                merged["cycles"] = existing.get("cycles")
            if merged.get("resources") is None:
                merged["resources"] = existing.get("resources")
            target[key] = merged
        else:
            target[key] = record


def compact(
    store_dir: PathLike, journal: Journal, foreign=()
) -> Tuple[int, int]:
    """Fold the journal into the snapshot; empty the journal.

    ``foreign`` lists sibling journal files of a multi-writer store
    (``journal-<writer>.jsonl``, see
    :class:`~repro.store.backing.DesignStore`) to fold in and delete.
    Only pass siblings whose writers are stopped — this is offline
    maintenance.  Ordering keeps every step crash-safe: the snapshot
    (already containing the foreign records) is replaced atomically
    *before* any journal is truncated or unlinked, so a crash in
    between merely replays records the snapshot already holds.

    Returns ``(journal_records_folded, snapshot_entries_after)``.
    """
    store_dir = pathlib.Path(store_dir)
    snapshot_path = store_dir / SNAPSHOT_NAME
    with obs.span("store.compact"):
        entries = load_snapshot(snapshot_path)
        folded = journal.records()
        entries.update(replay_latest(folded))
        foreign_count = 0
        foreign_paths = []
        for path in foreign:
            records = read_journal_tolerant(path)
            merge_entries(entries, records)
            foreign_count += len(records)
            foreign_paths.append(pathlib.Path(path))
        write_snapshot(snapshot_path, entries)
        journal.truncate()
        for path in foreign_paths:
            try:
                path.unlink()
            except OSError as exc:
                raise StoreError(
                    f"Cannot remove folded journal {path}: {exc}"
                ) from exc
    obs.inc("store.compactions")
    return len(folded) + foreign_count, len(entries)
