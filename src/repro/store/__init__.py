"""repro.store — persistent design store + crash-safe resumable DSE.

The design-space evaluations the paper's optimizer enumerates are pure
functions of ``(design signature, evaluation context)``; this package
makes them durable artifacts instead of per-process throwaways:

- :mod:`repro.store.journal` — crash-safe append-only JSONL journal
  (CRC per record, fsync-on-batch, torn-tail recovery).
- :mod:`repro.store.index` — compacted snapshots and the offline
  compaction step.
- :mod:`repro.store.backing` — the content-addressed
  :class:`DesignStore` and the :class:`BackingStore` protocol the
  :class:`~repro.dse.evaluator.CandidateEvaluator` consults on miss
  and writes through on evaluation.
- :mod:`repro.store.checkpoint` — :class:`SweepCheckpoint` and
  :class:`CheckpointedExecutor` for resumable experiment sweeps, and
  :class:`SearchCheckpoint` for resumable/shardable tiered searches
  (see ``docs/SEARCH.md``).

Typical warm-start usage::

    from repro.dse.evaluator import CandidateEvaluator
    from repro.store import DesignStore

    with DesignStore("results-store") as store:
        engine = CandidateEvaluator(store=store)
        ...  # optimize_* / pareto_explore / sensitivity

Formats, invalidation rules, and resume semantics are documented in
``docs/STORE.md``.
"""

from repro.store.backing import (
    BackingStore,
    DesignStore,
    StoredResult,
    design_key,
    digest,
    evaluation_context,
)
from repro.store.checkpoint import (
    CheckpointedExecutor,
    SearchCheckpoint,
    SweepCheckpoint,
)
from repro.store.index import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    STORE_SCHEMA,
    load_snapshot,
    write_snapshot,
)
from repro.store.journal import (
    CRASH_ENV,
    Journal,
    canonical_json,
    decode_record,
    encode_record,
)

__all__ = [
    "BackingStore",
    "DesignStore",
    "StoredResult",
    "design_key",
    "digest",
    "evaluation_context",
    "SweepCheckpoint",
    "SearchCheckpoint",
    "CheckpointedExecutor",
    "Journal",
    "canonical_json",
    "decode_record",
    "encode_record",
    "CRASH_ENV",
    "STORE_SCHEMA",
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
    "load_snapshot",
    "write_snapshot",
]
