"""Declarative linear stencil patterns.

A stencil update is represented as a set of *taps*: each output field's
new value is an affine combination of input-field values at fixed
offsets plus auxiliary (read-only) inputs and an optional constant.
This covers the entire Table 2 suite of the paper — Jacobi (single
field), HotSpot (field + power input), and FDTD (three coupled fields)
— as well as any other linear stencil.

Multi-sweep algorithms such as FDTD, whose time step is a *sequence* of
dependent sweeps, are expressed as :class:`Stage` lists and symbolically
composed into an equivalent single-stage pattern with
:func:`compose_stages`; since every sweep is linear, the composition is
exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import SpecificationError


@dataclass(frozen=True)
class Tap:
    """One term of a stencil update: ``coeff * source[cell + offset]``.

    Attributes:
        source: name of the input field or auxiliary array read.
        offset: relative grid offset of the read, one entry per dim.
        coeff: multiplicative coefficient.
    """

    source: str
    offset: Tuple[int, ...]
    coeff: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", tuple(int(o) for o in self.offset))

    def shifted(self, shift: Sequence[int]) -> "Tap":
        """Tap translated by ``shift`` (used by stage composition)."""
        return Tap(
            self.source,
            tuple(o + s for o, s in zip(self.offset, shift)),
            self.coeff,
        )

    def scaled(self, factor: float) -> "Tap":
        """Tap with coefficient multiplied by ``factor``."""
        return Tap(self.source, self.offset, self.coeff * factor)


@dataclass(frozen=True)
class FieldUpdate:
    """Affine update rule for one output field.

    ``new[cell] = sum(tap.coeff * tap.source[cell + tap.offset]) + constant``
    """

    taps: Tuple[Tap, ...]
    constant: float = 0.0

    def __post_init__(self) -> None:
        if not self.taps and self.constant == 0.0:
            raise SpecificationError("FieldUpdate needs at least one tap")
        ranks = {len(t.offset) for t in self.taps}
        if len(ranks) > 1:
            raise SpecificationError(
                f"Taps have inconsistent dimensionality: {ranks}"
            )

    @property
    def ndim(self) -> int:
        """Dimensionality of the tap offsets."""
        return len(self.taps[0].offset) if self.taps else 0

    def sources(self) -> Tuple[str, ...]:
        """Distinct input names read, in first-appearance order."""
        seen: List[str] = []
        for tap in self.taps:
            if tap.source not in seen:
                seen.append(tap.source)
        return tuple(seen)


def _merge_taps(taps: Sequence[Tap]) -> Tuple[Tap, ...]:
    """Sum coefficients of taps sharing (source, offset), keeping order."""
    merged: Dict[Tuple[str, Tuple[int, ...]], float] = {}
    order: List[Tuple[str, Tuple[int, ...]]] = []
    for tap in taps:
        key = (tap.source, tap.offset)
        if key not in merged:
            merged[key] = 0.0
            order.append(key)
        merged[key] += tap.coeff
    return tuple(
        Tap(src, off, merged[(src, off)])
        for src, off in order
        if merged[(src, off)] != 0.0
    )


@dataclass(frozen=True)
class StencilPattern:
    """A complete single-stage stencil update over one or more fields.

    Attributes:
        name: human-readable identifier (e.g. ``"jacobi-2d"``).
        ndim: grid dimensionality ``D``.
        fields: names of the state fields updated every iteration.
        aux: names of read-only auxiliary inputs (e.g. HotSpot power).
        updates: per-field affine update rules.
    """

    name: str
    ndim: int
    fields: Tuple[str, ...]
    updates: Mapping[str, FieldUpdate]
    aux: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.ndim < 1:
            raise SpecificationError(f"ndim must be >= 1, got {self.ndim}")
        if not self.fields:
            raise SpecificationError("Pattern needs at least one field")
        if set(self.updates) != set(self.fields):
            raise SpecificationError(
                f"updates keys {sorted(self.updates)} must equal "
                f"fields {sorted(self.fields)}"
            )
        valid_sources = set(self.fields) | set(self.aux)
        for fname, update in self.updates.items():
            if update.taps and update.ndim != self.ndim:
                raise SpecificationError(
                    f"Update for {fname!r} has rank {update.ndim}, "
                    f"pattern has ndim {self.ndim}"
                )
            for tap in update.taps:
                if tap.source not in valid_sources:
                    raise SpecificationError(
                        f"Update for {fname!r} reads unknown source "
                        f"{tap.source!r}"
                    )

    @cached_property
    def radius(self) -> Tuple[int, ...]:
        """Maximum absolute tap offset per dimension (halo width)."""
        radius = [0] * self.ndim
        for update in self.updates.values():
            for tap in update.taps:
                for d, off in enumerate(tap.offset):
                    radius[d] = max(radius[d], abs(off))
        return tuple(radius)

    def signature(self) -> Tuple:
        """Canonical hashable identity of the update rule.

        Two patterns with equal signatures produce identical model and
        resource estimates, so the signature is usable as a cache key
        (``updates`` is a mapping and therefore unhashable directly).
        """
        updates = tuple(
            (
                fname,
                tuple(
                    (t.source, t.offset, t.coeff)
                    for t in self.updates[fname].taps
                ),
                self.updates[fname].constant,
            )
            for fname in sorted(self.updates)
        )
        return (self.name, self.ndim, self.fields, self.aux, updates)

    @property
    def halo_growth(self) -> Tuple[int, ...]:
        """``Δw_d``: per-dimension tile growth per fused iteration.

        The cone of a tile expands by the stencil radius on both sides
        of each dimension for every fused iteration, so the footprint
        length grows by ``2 * r_d`` (Table 1's ``Δw_d``).
        """
        return tuple(2 * r for r in self.radius)

    @property
    def num_fields(self) -> int:
        """Number of state fields updated each iteration."""
        return len(self.fields)

    def taps_for(self, fname: str) -> Tuple[Tap, ...]:
        """Taps of the update rule for field ``fname``."""
        return self.updates[fname].taps

    def points_per_cell(self) -> int:
        """Total taps evaluated per grid cell per iteration."""
        return sum(len(u.taps) for u in self.updates.values())

    def multiplies_per_cell(self) -> int:
        """Multiplications per cell (taps with coefficient != 1)."""
        return sum(
            1
            for u in self.updates.values()
            for t in u.taps
            if t.coeff != 1.0
        )

    def adds_per_cell(self) -> int:
        """Additions per cell (tap accumulation + constants)."""
        total = 0
        for update in self.updates.values():
            terms = len(update.taps) + (1 if update.constant != 0.0 else 0)
            total += max(0, terms - 1)
        return total

    def flops_per_cell(self) -> int:
        """Floating-point operations per cell per iteration."""
        return self.multiplies_per_cell() + self.adds_per_cell()


@dataclass(frozen=True)
class Stage:
    """One sweep of a multi-sweep time step (e.g. FDTD's ey/ex/hz sweeps).

    A stage updates a subset of fields from the *current* state (which
    includes the results of earlier stages in the same time step).
    """

    updates: Mapping[str, FieldUpdate]

    def field_names(self) -> Tuple[str, ...]:
        """Fields written by this stage."""
        return tuple(self.updates)


def compose_stages(
    name: str,
    ndim: int,
    fields: Sequence[str],
    stages: Sequence[Stage],
    aux: Sequence[str] = (),
) -> StencilPattern:
    """Symbolically compose sequential sweeps into one-step taps.

    Because every sweep is affine, the value of each field after the
    full sequence of stages is itself an affine function of the state at
    the *start* of the time step.  This function expands that
    composition exactly, producing a single-stage
    :class:`StencilPattern` whose one application equals applying all
    stages in order.

    Args:
        name: name for the composed pattern.
        ndim: grid dimensionality.
        fields: all state fields (in canonical order).
        stages: sweeps applied in order within one time step.
        aux: read-only auxiliary input names.

    Returns:
        The exact single-stage composition.
    """
    field_set = set(fields)
    aux_set = set(aux)
    # Symbolic state: field -> (taps over start-of-step sources, constant).
    state: Dict[str, Tuple[Tuple[Tap, ...], float]] = {
        f: ((Tap(f, (0,) * ndim, 1.0),), 0.0) for f in fields
    }
    for stage in stages:
        new_state = dict(state)
        for fname, update in stage.updates.items():
            if fname not in field_set:
                raise SpecificationError(
                    f"Stage writes unknown field {fname!r}"
                )
            expanded: List[Tap] = []
            constant = update.constant
            for tap in update.taps:
                if tap.source in aux_set:
                    expanded.append(tap)
                    continue
                if tap.source not in field_set:
                    raise SpecificationError(
                        f"Stage update for {fname!r} reads unknown "
                        f"source {tap.source!r}"
                    )
                base_taps, base_const = state[tap.source]
                constant += tap.coeff * base_const
                for base in base_taps:
                    expanded.append(base.shifted(tap.offset).scaled(tap.coeff))
            new_state[fname] = (_merge_taps(expanded), constant)
        state = new_state

    updates = {
        f: FieldUpdate(taps=state[f][0], constant=state[f][1]) for f in fields
    }
    return StencilPattern(
        name=name,
        ndim=ndim,
        fields=tuple(fields),
        updates=updates,
        aux=tuple(aux),
    )
