"""Golden (naive) numpy executor for linear stencil programs.

This is the correctness oracle for everything else in the framework:
the tiled, fused, and pipe-shared functional executors in
:mod:`repro.sim.functional` must reproduce its output exactly (same
dtype, same tap accumulation order, hence bitwise-identical results
under the FROZEN boundary policy).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.stencil.boundary import BoundaryPolicy
from repro.stencil.pattern import FieldUpdate
from repro.stencil.spec import StencilSpec
from repro.utils.grids import Box, box_from_shape, shrink_box

State = Dict[str, np.ndarray]


def _shifted_view(
    array: np.ndarray, offset: Tuple[int, ...], box: Box
) -> np.ndarray:
    """View of ``array`` over ``box`` translated by ``offset``.

    Assumes the translated box stays in bounds (guaranteed for FROZEN
    interiors because ``box`` is shrunk by the stencil radius).
    """
    return array[box.translate(offset).slices()]


def apply_update_interior(
    update: FieldUpdate,
    state: Mapping[str, np.ndarray],
    aux: Mapping[str, np.ndarray],
    box: Box,
    dtype: np.dtype,
) -> np.ndarray:
    """Evaluate one field update over ``box`` (taps must stay in bounds).

    Accumulates taps strictly in declaration order so that every
    executor in the framework produces bitwise-identical floats.
    """
    result = np.full(box.shape, update.constant, dtype=dtype)
    for tap in update.taps:
        source = aux[tap.source] if tap.source in aux else state[tap.source]
        view = _shifted_view(source, tap.offset, box)
        if tap.coeff == 1.0:
            result += view
        else:
            result += dtype.type(tap.coeff) * view
    return result


class ReferenceExecutor:
    """Iterates a :class:`StencilSpec` on full numpy grids.

    Example:
        >>> from repro.stencil import jacobi_2d
        >>> spec = jacobi_2d(grid=(16, 16), iterations=4)
        >>> final = ReferenceExecutor(spec).run()
        >>> sorted(final)
        ['a']
    """

    def __init__(self, spec: StencilSpec):
        self.spec = spec
        self.pattern = spec.pattern
        self._radius = self.pattern.radius

    def run(
        self,
        iterations: Optional[int] = None,
        state: Optional[State] = None,
        aux: Optional[State] = None,
    ) -> State:
        """Run ``iterations`` steps (default: the spec's ``H``).

        Args:
            iterations: number of steps to execute.
            state: initial fields (default: the spec's deterministic
                initial state).  Not mutated.
            aux: auxiliary inputs (default: the spec's).

        Returns:
            Final field arrays keyed by field name.
        """
        steps = self.spec.iterations if iterations is None else iterations
        current = {
            k: v.astype(self.spec.dtype, copy=True)
            for k, v in (state or self.spec.initial_state()).items()
        }
        aux_arrays = dict(aux or self.spec.aux_state())
        for _ in range(steps):
            current = self.step(current, aux_arrays)
        return current

    def step(self, state: State, aux: State) -> State:
        """One full stencil iteration under the spec's boundary policy."""
        policy = self.spec.boundary
        if policy is BoundaryPolicy.FROZEN:
            return self._step_frozen(state, aux)
        return self._step_padded(state, aux, policy)

    def _step_frozen(self, state: State, aux: State) -> State:
        interior = shrink_box(
            box_from_shape(self.spec.grid_shape), self._radius
        )
        new_state: State = {}
        for fname in self.pattern.fields:
            update = self.pattern.updates[fname]
            out = state[fname].copy()
            out[interior.slices()] = apply_update_interior(
                update, state, aux, interior, self.spec.dtype
            )
            new_state[fname] = out
        return new_state

    def _step_padded(
        self, state: State, aux: State, policy: BoundaryPolicy
    ) -> State:
        if policy is BoundaryPolicy.CLAMP:
            mode = "edge"
        elif policy is BoundaryPolicy.PERIODIC:
            mode = "wrap"
        else:  # pragma: no cover - exhaustive enum
            raise SpecificationError(f"Unhandled boundary policy {policy}")
        pad = tuple((r, r) for r in self._radius)
        padded_state = {k: np.pad(v, pad, mode=mode) for k, v in state.items()}
        padded_aux = {k: np.pad(v, pad, mode=mode) for k, v in aux.items()}
        # The full grid, expressed in padded coordinates, is the padded
        # box shrunk back by the radius.
        full = Box(
            self._radius,
            tuple(r + w for r, w in zip(self._radius, self.spec.grid_shape)),
        )
        new_state: State = {}
        for fname in self.pattern.fields:
            update = self.pattern.updates[fname]
            new_state[fname] = apply_update_interior(
                update, padded_state, padded_aux, full, self.spec.dtype
            )
        return new_state


def run_reference(
    spec: StencilSpec,
    iterations: Optional[int] = None,
    state: Optional[State] = None,
    aux: Optional[State] = None,
) -> State:
    """Convenience wrapper around :class:`ReferenceExecutor`."""
    return ReferenceExecutor(spec).run(iterations, state, aux)
