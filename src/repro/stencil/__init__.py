"""Stencil application substrate.

This subpackage describes *what* an iterative stencil algorithm computes,
independently of how it is mapped to hardware:

- :mod:`repro.stencil.pattern` — declarative linear stencil patterns
  (multi-field, with auxiliary read-only inputs) and symbolic stage
  composition.
- :mod:`repro.stencil.spec` — a complete benchmark instance (pattern +
  grid size + iteration count + dtype + boundary policy).
- :mod:`repro.stencil.boundary` — boundary policies.
- :mod:`repro.stencil.reference` — golden numpy executor.
- :mod:`repro.stencil.library` — the paper's Table 2 suite plus extras.
"""

from repro.stencil.boundary import BoundaryPolicy
from repro.stencil.pattern import (
    FieldUpdate,
    Stage,
    StencilPattern,
    Tap,
    compose_stages,
)
from repro.stencil.reference import ReferenceExecutor, run_reference
from repro.stencil.spec import StencilSpec
from repro.stencil.library import (
    BENCHMARKS,
    PAPER_SUITE,
    fdtd_2d,
    fdtd_3d,
    gaussian_blur_2d,
    get_benchmark,
    heat_1d,
    hotspot_2d,
    hotspot_3d,
    jacobi_1d,
    jacobi_2d,
    jacobi_3d,
    seidel_like_2d,
)

__all__ = [
    "BoundaryPolicy",
    "FieldUpdate",
    "Stage",
    "StencilPattern",
    "Tap",
    "compose_stages",
    "ReferenceExecutor",
    "run_reference",
    "StencilSpec",
    "BENCHMARKS",
    "PAPER_SUITE",
    "get_benchmark",
    "jacobi_1d",
    "jacobi_2d",
    "jacobi_3d",
    "hotspot_2d",
    "hotspot_3d",
    "fdtd_2d",
    "fdtd_3d",
    "gaussian_blur_2d",
    "heat_1d",
    "seidel_like_2d",
]
