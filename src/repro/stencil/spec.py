"""Complete stencil benchmark instances (pattern + problem parameters).

A :class:`StencilSpec` is everything the framework needs to know about a
workload: the update pattern, the grid extents ``W_d``, the iteration
count ``H``, the element type (``Δs`` in the paper's Table 1), the
boundary policy, and deterministic initial state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.stencil.boundary import BoundaryPolicy
from repro.stencil.pattern import StencilPattern
from repro.utils.validation import check_positive, check_positive_tuple


@dataclass(frozen=True)
class StencilSpec:
    """A fully-specified iterative stencil workload.

    Attributes:
        name: benchmark name (e.g. ``"jacobi-2d"``).
        pattern: the stencil update pattern.
        grid_shape: grid extents ``W_d``, one entry per dimension.
        iterations: total number of stencil iterations ``H``.
        dtype: numpy element type of every field and aux array.
        boundary: boundary policy (the paper's suite uses FROZEN).
        source: provenance label (e.g. ``"Polybench"``), for Table 2.
        seed: RNG seed used to build the deterministic initial state.
    """

    name: str
    pattern: StencilPattern
    grid_shape: Tuple[int, ...]
    iterations: int
    dtype: np.dtype = np.dtype(np.float32)
    boundary: BoundaryPolicy = BoundaryPolicy.FROZEN
    source: str = "custom"
    seed: int = 2017

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        object.__setattr__(
            self,
            "grid_shape",
            check_positive_tuple("grid_shape", self.grid_shape, self.ndim),
        )
        check_positive("iterations", self.iterations)
        for extent, radius in zip(self.grid_shape, self.pattern.radius):
            if extent <= 2 * radius:
                raise SpecificationError(
                    f"Grid extent {extent} too small for stencil radius "
                    f"{radius} in {self.name!r}"
                )

    @property
    def ndim(self) -> int:
        """Grid dimensionality ``D``."""
        return self.pattern.ndim

    @property
    def element_bytes(self) -> int:
        """``Δs``: bytes per grid cell per field."""
        return int(self.dtype.itemsize)

    @property
    def cell_state_bytes(self) -> int:
        """Bytes of state per grid cell across all fields."""
        return self.element_bytes * self.pattern.num_fields

    @property
    def total_cells(self) -> int:
        """Number of grid cells (product of ``W_d``)."""
        total = 1
        for extent in self.grid_shape:
            total *= extent
        return total

    @property
    def footprint_bytes(self) -> int:
        """Bytes of state for the whole grid across all fields."""
        return self.total_cells * self.cell_state_bytes

    def initial_state(self) -> Dict[str, np.ndarray]:
        """Deterministic initial field arrays, keyed by field name."""
        rng = np.random.default_rng(self.seed)
        return {
            name: rng.uniform(0.0, 1.0, size=self.grid_shape).astype(
                self.dtype
            )
            for name in self.pattern.fields
        }

    def aux_state(self) -> Dict[str, np.ndarray]:
        """Deterministic auxiliary (read-only) input arrays."""
        rng = np.random.default_rng(self.seed + 1)
        return {
            name: rng.uniform(0.0, 0.1, size=self.grid_shape).astype(
                self.dtype
            )
            for name in self.pattern.aux
        }

    def signature(self) -> Tuple:
        """Canonical hashable identity of the workload.

        Covers every field that influences evaluation (the pattern via
        its own signature, geometry, dtype, boundary, seed), so equal
        signatures imply identical model/resource/simulation results.
        """
        return (
            self.name,
            self.pattern.signature(),
            self.grid_shape,
            self.iterations,
            self.dtype.str,
            self.boundary.name,
            self.source,
            self.seed,
        )

    def with_grid(self, grid_shape: Sequence[int]) -> "StencilSpec":
        """Copy with a different grid size (for scaled-down testing)."""
        return replace(self, grid_shape=tuple(int(g) for g in grid_shape))

    def with_iterations(self, iterations: int) -> "StencilSpec":
        """Copy with a different iteration count."""
        return replace(self, iterations=int(iterations))

    def describe(self) -> str:
        """One-line human-readable description (Table 2 row)."""
        size = " x ".join(str(w) for w in self.grid_shape)
        return (
            f"{self.name}: {self.source}, input {size}, "
            f"{self.iterations} iterations, {self.pattern.num_fields} "
            f"field(s), radius {self.pattern.radius}"
        )
