"""The benchmark suite as OpenCL kernel *source* (the paper's input).

The paper's framework starts from "an original stencil algorithm
written in OpenCL" (Fig. 5).  This module carries each Table 2
benchmark in that form — the single-iteration update kernel an OpenCL
programmer would write — together with the extraction metadata
(output-array pairing, auxiliary inputs), and a loader that runs the
frontend over it.

`tests/stencil/test_sources.py` cross-checks every extracted pattern
against the independently-constructed :mod:`repro.stencil.library`
pattern: two routes to the same taps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import SpecificationError
from repro.frontend.extractor import extract_features
from repro.stencil.pattern import StencilPattern


@dataclass(frozen=True)
class KernelSource:
    """One benchmark's OpenCL source plus extraction metadata."""

    name: str
    source: str
    field_map: Mapping[str, str]
    aux: Tuple[str, ...] = ()

    def extract(self) -> StencilPattern:
        """Run the feature extractor over the source."""
        return extract_features(
            self.source,
            name=self.name,
            field_map=self.field_map,
            aux=self.aux,
        ).pattern


_JACOBI_1D = KernelSource(
    name="jacobi-1d",
    field_map={"B": "a"},
    source="""
__kernel void jacobi_1d(__global float *a, __global float *B) {
    int i = get_global_id(0);
    B[i] = 0.33333f * (a[i - 1] + a[i] + a[i + 1]);
}
""",
)

_JACOBI_2D = KernelSource(
    name="jacobi-2d",
    field_map={"B": "a"},
    source="""
__kernel void jacobi_2d(__global float *a, __global float *B) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    B[i][j] = 0.2f * (a[i][j] + a[i - 1][j] + a[i + 1][j]
                      + a[i][j - 1] + a[i][j + 1]);
}
""",
)

_JACOBI_3D = KernelSource(
    name="jacobi-3d",
    field_map={"B": "a"},
    source="""
__kernel void jacobi_3d(__global float *a, __global float *B) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    int k = get_global_id(2);
    B[i][j][k] = 0.4f * a[i][j][k]
               + 0.1f * (a[i - 1][j][k] + a[i + 1][j][k]
                         + a[i][j - 1][k] + a[i][j + 1][k]
                         + a[i][j][k - 1] + a[i][j][k + 1]);
}
""",
)

_HOTSPOT_2D = KernelSource(
    name="hotspot-2d",
    field_map={"tnew": "a"},
    aux=("power",),
    source="""
__kernel void hotspot_2d(__global float *a, __global float *tnew,
                         __global const float *power) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    float step_over_cap = 0.1f;
    float r_plane = 10.0f;
    float r_z = 30.0f;
    float ambient = 0.8f;
    tnew[i][j] = a[i][j] + step_over_cap * (power[i][j]
        + (a[i + 1][j] + a[i - 1][j] - 2.0f * a[i][j]) / r_plane
        + (a[i][j + 1] + a[i][j - 1] - 2.0f * a[i][j]) / r_plane
        + (ambient - a[i][j]) / r_z);
}
""",
)

_HOTSPOT_3D = KernelSource(
    name="hotspot-3d",
    field_map={"tnew": "a"},
    aux=("power",),
    source="""
__kernel void hotspot_3d(__global float *a, __global float *tnew,
                         __global const float *power) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    int k = get_global_id(2);
    float step_over_cap = 0.1f;
    float r_plane = 10.0f;
    float r_z = 30.0f;
    float ambient = 0.8f;
    tnew[i][j][k] = a[i][j][k] + step_over_cap * (power[i][j][k]
        + (a[i + 1][j][k] + a[i - 1][j][k] - 2.0f * a[i][j][k]) / r_plane
        + (a[i][j + 1][k] + a[i][j - 1][k] - 2.0f * a[i][j][k]) / r_plane
        + (a[i][j][k + 1] + a[i][j][k - 1] - 2.0f * a[i][j][k]) / r_plane
        + (ambient - a[i][j][k]) / r_z);
}
""",
)

_FDTD_2D = KernelSource(
    name="fdtd-2d",
    field_map={},
    source="""
__kernel void fdtd_2d(__global float *ex, __global float *ey,
                      __global float *hz) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    ey[i][j] = ey[i][j] - 0.5f * (hz[i][j] - hz[i - 1][j]);
    ex[i][j] = ex[i][j] - 0.5f * (hz[i][j] - hz[i][j - 1]);
    hz[i][j] = hz[i][j] - 0.7f * (ex[i][j + 1] - ex[i][j]
                                  + ey[i + 1][j] - ey[i][j]);
}
""",
)

_FDTD_3D = KernelSource(
    name="fdtd-3d",
    field_map={},
    source="""
__kernel void fdtd_3d(__global float *ex, __global float *ey,
                      __global float *ez, __global float *hz) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    int k = get_global_id(2);
    ey[i][j][k] = ey[i][j][k] - 0.5f * (hz[i][j][k] - hz[i - 1][j][k]);
    ex[i][j][k] = ex[i][j][k] - 0.5f * (hz[i][j][k] - hz[i][j - 1][k]);
    ez[i][j][k] = ez[i][j][k] - 0.5f * (hz[i][j][k] - hz[i][j][k - 1]);
    hz[i][j][k] = hz[i][j][k] - 0.7f * (ey[i + 1][j][k] - ey[i][j][k]
                                        + ex[i][j + 1][k] - ex[i][j][k]
                                        + ez[i][j][k + 1] - ez[i][j][k]);
}
""",
)

#: The Table 2 suite in OpenCL-source form.
KERNEL_SOURCES: Dict[str, KernelSource] = {
    src.name: src
    for src in (
        _JACOBI_1D,
        _JACOBI_2D,
        _JACOBI_3D,
        _HOTSPOT_2D,
        _HOTSPOT_3D,
        _FDTD_2D,
        _FDTD_3D,
    )
}


def get_kernel_source(name: str) -> KernelSource:
    """Look up a benchmark's OpenCL source by library name."""
    try:
        return KERNEL_SOURCES[name]
    except KeyError:
        raise SpecificationError(
            f"No OpenCL source for benchmark {name!r}; "
            f"known: {sorted(KERNEL_SOURCES)}"
        ) from None


def extract_benchmark_pattern(name: str) -> StencilPattern:
    """Extract a benchmark's pattern from its OpenCL source."""
    return get_kernel_source(name).extract()
