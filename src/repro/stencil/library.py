"""The stencil benchmark suite (the paper's Table 2, plus extras).

Each builder returns a :class:`~repro.stencil.spec.StencilSpec` whose
default grid size and iteration count match Table 2 of the paper.  The
paper-scale grids are only *described* here; arrays are allocated lazily
(``spec.initial_state()``), so the analytic model and timing simulator
can work with paper-scale problems while functional tests pass small
``grid=`` overrides.

Substitution note (see DESIGN.md): Polybench's FDTD-2D drives the first
row of ``ey`` from a time-dependent source array ``_fict_``; we use the
frozen-edge boundary instead, which preserves the kernel's structure
(three coupled sweeps, radius 1) without the time-varying Dirichlet
term.  "FDTD-3D" is the natural radius-1, four-field 3-D extension of
the same sweep structure.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.errors import SpecificationError
from repro.stencil.pattern import (
    FieldUpdate,
    Stage,
    StencilPattern,
    Tap,
    compose_stages,
)
from repro.stencil.spec import StencilSpec


def _star_taps(
    ndim: int, center_coeff: float, neighbor_coeff: float, field: str = "a"
) -> Tuple[Tap, ...]:
    """Taps of a (2*ndim+1)-point star stencil."""
    zero = (0,) * ndim
    taps = [Tap(field, zero, center_coeff)]
    for d in range(ndim):
        for sign in (-1, 1):
            offset = tuple(sign if i == d else 0 for i in range(ndim))
            taps.append(Tap(field, offset, neighbor_coeff))
    return tuple(taps)


def _single_field_spec(
    name: str,
    ndim: int,
    taps: Tuple[Tap, ...],
    grid: Sequence[int],
    iterations: int,
    source: str,
    aux: Tuple[str, ...] = (),
    constant: float = 0.0,
) -> StencilSpec:
    pattern = StencilPattern(
        name=name,
        ndim=ndim,
        fields=("a",),
        updates={"a": FieldUpdate(taps=taps, constant=constant)},
        aux=aux,
    )
    return StencilSpec(
        name=name,
        pattern=pattern,
        grid_shape=tuple(grid),
        iterations=iterations,
        source=source,
    )


# ---------------------------------------------------------------------------
# Jacobi family (Polybench / Parboil)
# ---------------------------------------------------------------------------


def jacobi_1d(
    grid: Sequence[int] = (131072,), iterations: int = 1024
) -> StencilSpec:
    """Polybench Jacobi-1D: 3-point average, radius 1."""
    taps = (
        Tap("a", (-1,), 0.33333),
        Tap("a", (0,), 0.33333),
        Tap("a", (1,), 0.33333),
    )
    return _single_field_spec(
        "jacobi-1d", 1, taps, grid, iterations, "Polybench"
    )


def jacobi_2d(
    grid: Sequence[int] = (2048, 2048), iterations: int = 1024
) -> StencilSpec:
    """Polybench Jacobi-2D: 5-point star, radius 1."""
    taps = _star_taps(2, 0.2, 0.2)
    return _single_field_spec(
        "jacobi-2d", 2, taps, grid, iterations, "Polybench"
    )


def jacobi_3d(
    grid: Sequence[int] = (1024, 1024, 1024), iterations: int = 1024
) -> StencilSpec:
    """Parboil 7-point 3-D stencil, radius 1."""
    taps = _star_taps(3, 0.4, 0.1)
    return _single_field_spec(
        "jacobi-3d", 3, taps, grid, iterations, "Parboil"
    )


# ---------------------------------------------------------------------------
# HotSpot family (Rodinia thermal simulation)
# ---------------------------------------------------------------------------

_HOTSPOT_STEP_OVER_CAP = 0.1
_HOTSPOT_R_PLANE = 10.0
_HOTSPOT_R_Z = 30.0
_HOTSPOT_AMBIENT = 0.8


def _hotspot_taps(ndim: int) -> Tuple[Tuple[Tap, ...], float]:
    """HotSpot update taps: diffusion + power injection + ambient leak.

    ``t' = t + k*(power + sum_d (t_n + t_s - 2t)/R + (amb - t)/Rz)``
    """
    k = _HOTSPOT_STEP_OVER_CAP
    neighbor = k / _HOTSPOT_R_PLANE
    center = 1.0 - k * (2.0 * ndim / _HOTSPOT_R_PLANE + 1.0 / _HOTSPOT_R_Z)
    taps = list(_star_taps(ndim, center, neighbor))
    taps.append(Tap("power", (0,) * ndim, k))
    constant = k * _HOTSPOT_AMBIENT / _HOTSPOT_R_Z
    return tuple(taps), constant


def hotspot_2d(
    grid: Sequence[int] = (4096, 4096), iterations: int = 1000
) -> StencilSpec:
    """Rodinia HotSpot-2D: 5-point thermal stencil with power input."""
    taps, constant = _hotspot_taps(2)
    return _single_field_spec(
        "hotspot-2d",
        2,
        taps,
        grid,
        iterations,
        "Rodinia",
        aux=("power",),
        constant=constant,
    )


def hotspot_3d(
    grid: Sequence[int] = (4096, 4096, 128), iterations: int = 1000
) -> StencilSpec:
    """Rodinia HotSpot-3D: 7-point thermal stencil with power input."""
    taps, constant = _hotspot_taps(3)
    return _single_field_spec(
        "hotspot-3d",
        3,
        taps,
        grid,
        iterations,
        "Rodinia",
        aux=("power",),
        constant=constant,
    )


# ---------------------------------------------------------------------------
# FDTD family (Polybench electromagnetic kernels)
# ---------------------------------------------------------------------------


def _fdtd_2d_pattern() -> StencilPattern:
    """Composed one-step pattern of Polybench FDTD-2D's three sweeps."""
    ey_stage = Stage(
        updates={
            "ey": FieldUpdate(
                taps=(
                    Tap("ey", (0, 0), 1.0),
                    Tap("hz", (0, 0), -0.5),
                    Tap("hz", (-1, 0), 0.5),
                )
            )
        }
    )
    ex_stage = Stage(
        updates={
            "ex": FieldUpdate(
                taps=(
                    Tap("ex", (0, 0), 1.0),
                    Tap("hz", (0, 0), -0.5),
                    Tap("hz", (0, -1), 0.5),
                )
            )
        }
    )
    hz_stage = Stage(
        updates={
            "hz": FieldUpdate(
                taps=(
                    Tap("hz", (0, 0), 1.0),
                    Tap("ex", (0, 1), -0.7),
                    Tap("ex", (0, 0), 0.7),
                    Tap("ey", (1, 0), -0.7),
                    Tap("ey", (0, 0), 0.7),
                )
            )
        }
    )
    return compose_stages(
        "fdtd-2d", 2, ("ex", "ey", "hz"), (ey_stage, ex_stage, hz_stage)
    )


def fdtd_2d(
    grid: Sequence[int] = (2048, 2048), iterations: int = 500
) -> StencilSpec:
    """Polybench FDTD-2D: three coupled field sweeps per time step."""
    return StencilSpec(
        name="fdtd-2d",
        pattern=_fdtd_2d_pattern(),
        grid_shape=tuple(grid),
        iterations=iterations,
        source="Polybench",
    )


def _fdtd_3d_pattern() -> StencilPattern:
    """Four-field, radius-1 3-D extension of the FDTD sweep structure."""
    zero = (0, 0, 0)
    e_stages = []
    for fname, axis in (("ey", 0), ("ex", 1), ("ez", 2)):
        back = tuple(-1 if d == axis else 0 for d in range(3))
        e_stages.append(
            Stage(
                updates={
                    fname: FieldUpdate(
                        taps=(
                            Tap(fname, zero, 1.0),
                            Tap("hz", zero, -0.5),
                            Tap("hz", back, 0.5),
                        )
                    )
                }
            )
        )
    hz_taps = [Tap("hz", zero, 1.0)]
    for fname, axis in (("ey", 0), ("ex", 1), ("ez", 2)):
        forward = tuple(1 if d == axis else 0 for d in range(3))
        hz_taps.append(Tap(fname, forward, -0.7))
        hz_taps.append(Tap(fname, zero, 0.7))
    hz_stage = Stage(updates={"hz": FieldUpdate(taps=tuple(hz_taps))})
    return compose_stages(
        "fdtd-3d",
        3,
        ("ex", "ey", "ez", "hz"),
        tuple(e_stages) + (hz_stage,),
    )


def fdtd_3d(
    grid: Sequence[int] = (2048, 2048, 2048), iterations: int = 500
) -> StencilSpec:
    """FDTD-3D: four coupled field sweeps per time step, radius 1."""
    return StencilSpec(
        name="fdtd-3d",
        pattern=_fdtd_3d_pattern(),
        grid_shape=tuple(grid),
        iterations=iterations,
        source="Polybench",
    )


# ---------------------------------------------------------------------------
# Extra stencils (beyond Table 2) exercising other shapes
# ---------------------------------------------------------------------------


def heat_1d(
    grid: Sequence[int] = (65536,), iterations: int = 512
) -> StencilSpec:
    """Explicit 1-D heat equation: weighted 3-point, radius 1."""
    taps = (
        Tap("a", (-1,), 0.25),
        Tap("a", (0,), 0.5),
        Tap("a", (1,), 0.25),
    )
    return _single_field_spec("heat-1d", 1, taps, grid, iterations, "custom")


def gaussian_blur_2d(
    grid: Sequence[int] = (1920, 1080), iterations: int = 64
) -> StencilSpec:
    """Iterative 3x3 Gaussian blur (9-point box, radius 1)."""
    weights = {0: 0.25, 1: 0.125, 2: 0.0625}
    taps = tuple(
        Tap("a", (di, dj), weights[abs(di) + abs(dj)])
        for di in (-1, 0, 1)
        for dj in (-1, 0, 1)
    )
    return _single_field_spec(
        "gaussian-blur-2d", 2, taps, grid, iterations, "image-processing"
    )


def sobel_x_2d(
    grid: Sequence[int] = (1920, 1080), iterations: int = 1
) -> StencilSpec:
    """Horizontal Sobel gradient (3x3, radius 1, six taps).

    The classic edge-detection operator is a single linear convolution,
    so it fits the affine IR exactly; coefficients are the standard
    Sobel-x kernel scaled by 1/8 to keep iterated applications bounded.
    """
    taps = tuple(
        Tap("a", (di, dj), dj * (2.0 if di == 0 else 1.0) / 8.0)
        for di in (-1, 0, 1)
        for dj in (-1, 1)
    )
    return _single_field_spec(
        "sobel-x-2d", 2, taps, grid, iterations, "image-processing"
    )


def contrast_threshold_2d(
    grid: Sequence[int] = (1920, 1080), iterations: int = 1
) -> StencilSpec:
    """Affine contrast/threshold stage (unsharp-style, radius 1).

    Substitution note (see DESIGN.md): a hard binary threshold is
    non-linear and outside the affine IR, so — like FDTD-2D's
    ``_fict_`` source — we substitute the nearest linear operator: an
    unsharp contrast boost ``(1+4λ)·center − λ·Σ neighbors + bias``
    that sharpens edge responses against a mid-grey bias, preserving
    the pipeline's structure (radius-1 read footprint, one output
    field) without the comparison.
    """
    lam = 0.35
    taps = [Tap("a", (0, 0), 1.0 + 4.0 * lam)]
    for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        taps.append(Tap("a", (di, dj), -lam))
    return _single_field_spec(
        "contrast-threshold-2d",
        2,
        tuple(taps),
        grid,
        iterations,
        "image-processing",
        constant=-0.5 * lam,
    )


def seidel_like_2d(
    grid: Sequence[int] = (2048, 2048), iterations: int = 256
) -> StencilSpec:
    """Jacobi-ordered 9-point average (Seidel-2D's footprint)."""
    taps = tuple(
        Tap("a", (di, dj), 1.0 / 9.0)
        for di in (-1, 0, 1)
        for dj in (-1, 0, 1)
    )
    return _single_field_spec(
        "seidel-2d", 2, taps, grid, iterations, "Polybench"
    )


def wide_star_1d(
    grid: Sequence[int] = (65536,), iterations: int = 256
) -> StencilSpec:
    """Radius-2 1-D stencil, exercising halo width > 1."""
    taps = (
        Tap("a", (-2,), 0.1),
        Tap("a", (-1,), 0.2),
        Tap("a", (0,), 0.4),
        Tap("a", (1,), 0.2),
        Tap("a", (2,), 0.1),
    )
    return _single_field_spec(
        "wide-star-1d", 1, taps, grid, iterations, "custom"
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BENCHMARKS: Dict[str, Callable[..., StencilSpec]] = {
    "jacobi-1d": jacobi_1d,
    "jacobi-2d": jacobi_2d,
    "jacobi-3d": jacobi_3d,
    "hotspot-2d": hotspot_2d,
    "hotspot-3d": hotspot_3d,
    "fdtd-2d": fdtd_2d,
    "fdtd-3d": fdtd_3d,
    "heat-1d": heat_1d,
    "gaussian-blur-2d": gaussian_blur_2d,
    "sobel-x-2d": sobel_x_2d,
    "contrast-threshold-2d": contrast_threshold_2d,
    "seidel-2d": seidel_like_2d,
    "wide-star-1d": wide_star_1d,
}

#: Names of the seven benchmarks evaluated in the paper (Table 2).
PAPER_SUITE: Tuple[str, ...] = (
    "jacobi-1d",
    "jacobi-2d",
    "jacobi-3d",
    "hotspot-2d",
    "hotspot-3d",
    "fdtd-2d",
    "fdtd-3d",
)


def get_benchmark(name: str, **kwargs) -> StencilSpec:
    """Build a benchmark spec by name, passing overrides through.

    Args:
        name: key in :data:`BENCHMARKS`.
        **kwargs: forwarded to the builder (e.g. ``grid=``,
            ``iterations=``).
    """
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        raise SpecificationError(
            f"Unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None
    return builder(**kwargs)
