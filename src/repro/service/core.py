"""The long-running synthesis service: worker pool + job lifecycle.

:class:`SynthesisService` turns the one-shot compile pipeline
(frontend extract → DSE via the shared
:class:`~repro.dse.evaluator.CandidateEvaluator` → codegen emit) into
a resident, query-able service:

- **One warm engine for all jobs.**  Every job is scored by a single
  evaluator bound to the service's board, so signature memoization —
  and, with a :class:`~repro.store.DesignStore` attached, the
  persistent warm path — is amortized across requests and across
  process restarts.
- **Dedup / coalescing.**  A request whose content signature matches
  an in-flight job does not enqueue a second copy; it is attached to
  the existing job and both callers get the one result
  (``service.dedup`` counts these).  Repeat requests *after*
  completion run again, but resolve through the evaluator memo / store
  without re-running the model.
- **Admission control.**  The queue has a bounded depth; past it,
  submission fails with :class:`~repro.errors.ServiceOverloadError`
  carrying a load-derived retry-after estimate instead of blocking the
  caller.
- **Timeouts + cancellation.**  Jobs are cancellable while queued and
  while running: the evaluator's per-candidate trace hook doubles as a
  cancellation point, so a deadline cuts into a long exploration.
- **Bounded retry.**  Transient failures (:class:`StoreError`, OS
  errors, :class:`TransientServiceError`) are retried with exponential
  backoff up to ``max_retries`` times; model/design errors fail fast.
- **Graceful drain.**  ``shutdown(drain=True)`` stops admissions,
  lets queued + running jobs finish, flushes the store, and joins the
  workers; ``drain=False`` cancels everything still pending.

The HTTP surface over this engine lives in :mod:`repro.service.http`;
the in-process API is complete on its own (see ``tests/service/``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

from repro import obs
from repro.api import ProgramSynthesisResult, SynthesisResult, synthesize
from repro.dse.evaluator import CandidateEvaluator
from repro.dse.search import SearchDriver
from repro.errors import (
    JobCancelledError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    StoreError,
    TransientServiceError,
)
from repro.model.predictor import Fidelity
from repro.obs.record import (
    FlightRecord,
    TelemetryJournal,
    peak_rss_kb,
    thread_cpu_s,
)
from repro.obs.trace import TraceContext, activate as activate_trace
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.service.jobs import Job, JobRequest, JobState
from repro.service.queue import JobQueue
from repro.store.backing import BackingStore

_log = obs.get_logger("service")

#: Exception types the worker retries (with backoff) by default.
DEFAULT_TRANSIENT: Tuple[Type[BaseException], ...] = (
    TransientServiceError,
    StoreError,
    OSError,
)


@dataclass
class ServiceStats:
    """Lifetime counters (mirrored into ``service.*`` obs metrics).

    Attributes:
        requests: submission attempts (accepted + deduped + rejected).
        accepted: jobs admitted to the queue.
        deduped: submissions coalesced onto an in-flight job.
        rejected: submissions refused by admission control.
        completed: jobs finished in ``DONE``.
        failed: jobs finished in ``FAILED``.
        cancelled: jobs finished in ``CANCELLED`` (timeouts included).
        timeouts: cancelled jobs whose cause was the deadline.
        retries: transient-failure retry attempts.
    """

    requests: int = 0
    accepted: int = 0
    deduped: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    timeouts: int = 0
    retries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "accepted": self.accepted,
            "deduped": self.deduped,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timeouts": self.timeouts,
            "retries": self.retries,
        }


def result_payload(synth: SynthesisResult) -> Dict[str, Any]:
    """JSON-able job result for one synthesis outcome.

    Deterministic for a given request: identical submissions produce
    byte-identical payloads once serialized with sorted keys.
    """
    return {
        "workload": synth.spec.describe(),
        "design": {
            "kind": synth.design.kind.value,
            "summary": synth.design.describe(),
            "fused_depth": synth.design.fused_depth,
            "parallelism": synth.design.parallelism,
            "unroll": synth.design.unroll,
        },
        "predicted_cycles": synth.predicted_cycles,
        "resources": synth.resources.as_dict(),
        "dse": {
            "evaluated": synth.dse.evaluated,
            "feasible": synth.dse.feasible,
        },
        "program": {
            "kernel_source": synth.program.kernel_source,
            "host_source": synth.program.host_source,
            "num_kernels": synth.program.num_kernels,
        },
    }


def program_result_payload(synth: ProgramSynthesisResult) -> Dict[str, Any]:
    """JSON-able job result for one program synthesis outcome."""
    design = synth.design
    return {
        "workload": synth.program_spec.describe(),
        "design": {
            "kind": "program",
            "summary": design.describe(),
            "schedule": design.schedule,
            "stages": {
                name: stage_design.describe()
                for name, stage_design in design.stage_designs
            },
        },
        "predicted_cycles": synth.predicted_cycles,
        "resources": synth.resources.as_dict(),
        "dse": {
            "evaluated": synth.dse.evaluated,
            "feasible": synth.dse.feasible,
        },
        "program": {
            "kernel_source": synth.pipeline.kernel_source,
            "host_source": synth.pipeline.host_source,
            "num_kernels": synth.pipeline.num_kernels,
            "forwarded_edges": len(synth.pipeline.forwarded),
        },
    }


def run_synthesis_pipeline(
    request: JobRequest,
    evaluator: CandidateEvaluator,
    tiered: bool = False,
    search_chunk_size: int = 1024,
    job_id: str = "job",
) -> Dict[str, Any]:
    """The full facade pipeline for one request, instrumented.

    Module-level (not a service method) so worker *processes* of the
    sharded service run the exact same body against their own warm
    evaluator — byte-identical payloads by construction.
    """
    # One driver per job: the engine (and its memo/store) is the
    # shared warm state; SearchDriver.report is per-run and must
    # not be contended across worker threads.
    driver = (
        SearchDriver(evaluator=evaluator, chunk_size=search_chunk_size)
        if tiered
        else None
    )
    if request.program is not None:
        from repro.program.library import get_program

        program = get_program(
            request.program,
            grid=request.grid_shape,
            iterations=request.iterations,
        )
        with obs.span(
            "service.synthesize", job=job_id, design="program",
            schedule=request.schedule,
        ):
            synth = synthesize(
                program=program,
                schedule=request.schedule,
                evaluator=evaluator,
                driver=driver,
            )
        return program_result_payload(synth)
    with obs.span(
        "service.synthesize", job=job_id, design=request.design
    ):
        synth = synthesize(
            source=request.source,
            benchmark=request.benchmark,
            name=request.name,
            field_map=request.field_map,
            aux=request.aux,
            grid_shape=request.grid_shape,
            iterations=request.iterations,
            tile_shape=request.tile_shape,
            counts=request.counts,
            fused_depth=request.fused_depth,
            unroll=request.unroll,
            design=request.design,
            evaluator=evaluator,
            driver=driver,
        )
    return result_payload(synth)


class SynthesisService:
    """Resident synthesis engine: queue, workers, dedup, lifecycle.

    Args:
        board: platform every job is synthesized against.
        fidelity: analytical-model variant for the shared evaluator.
        store: optional persistent backing store; attached to the
            shared evaluator so evaluations survive restarts.  The
            service flushes it after every completed job but never
            closes it — ownership stays with the caller.
        workers: worker-thread count (jobs run concurrently, one
            evaluator shared by all).
        queue_depth: admission-control bound on waiting jobs.
        max_retries: transient-failure retries per job.
        retry_backoff_s: base backoff; attempt ``n`` sleeps
            ``retry_backoff_s * 2**(n-1)``.
        default_timeout_s: deadline for jobs that don't set their own.
        max_memo_entries: LRU bound for the evaluator memo (a resident
            server must not grow without bound).
        max_history: finished jobs kept for status queries; older ones
            are evicted oldest-first.
        tiered: route each job's exploration through a
            :class:`~repro.dse.search.SearchDriver` (Tier-0 vectorized
            screen, Tier-1 exact scoring) instead of the materialized
            exhaustive sweep.  Identical best designs, far fewer exact
            evaluations on large spaces (see ``docs/SEARCH.md``).
        search_chunk_size: candidates per driver chunk when tiered.
        transient: exception types treated as retryable.
        pipeline: override of the job body (tests inject slow/failing
            pipelines); receives ``(job, evaluator)`` and returns the
            JSON-able result payload.
        telemetry: optional durable telemetry journal; the service
            starts its periodic snapshotter, appends every finished
            job's flight record to it, and closes it (with a final
            snapshot) on shutdown.
        slo_p99_target_s: p99 job-latency objective backing the
            derived ``service.slo.*`` gauges (see :meth:`slo_gauges`).
        sim_backend: value-execution simulator backend request
            (``"auto" | "numpy" | "jit"``); resolved lazily and
            reported under ``/healthz`` as ``sim_backend``.  ``None``
            defers to the process default / ``REPRO_SIM_BACKEND``.
    """

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        store: Optional[BackingStore] = None,
        workers: int = 2,
        queue_depth: int = 64,
        max_retries: int = 2,
        retry_backoff_s: float = 0.25,
        default_timeout_s: Optional[float] = None,
        max_memo_entries: Optional[int] = 4096,
        max_history: int = 1024,
        tiered: bool = False,
        search_chunk_size: int = 1024,
        transient: Tuple[Type[BaseException], ...] = DEFAULT_TRANSIENT,
        pipeline=None,
        telemetry: Optional[TelemetryJournal] = None,
        slo_p99_target_s: float = 120.0,
        sim_backend: Optional[str] = None,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_history < 1:
            raise ServiceError(
                f"max_history must be >= 1, got {max_history}"
            )
        self.board = board
        self.store = store
        self.workers = workers
        self.telemetry = telemetry
        self.slo_p99_target_s = slo_p99_target_s
        self._started_m = time.monotonic()
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.default_timeout_s = default_timeout_s
        self.transient = tuple(transient)
        self.tiered = tiered
        self.search_chunk_size = search_chunk_size
        self.sim_backend = sim_backend
        self.stats = ServiceStats()
        self._pipeline = pipeline or self._synthesize_pipeline
        self._active = threading.local()
        self.evaluator = CandidateEvaluator(
            board=board,
            fidelity=fidelity,
            store=store,
            trace=self._trace_hook,
            max_memo_entries=max_memo_entries,
        )
        self._queue = JobQueue(max_depth=queue_depth)
        self._lock = threading.Lock()
        self._jobs: "Dict[str, Job]" = {}
        self._order: List[str] = []
        self._inflight: Dict[str, str] = {}
        self._max_history = max_history
        self._next_id = 0
        self._running = 0
        self._sim_report: Optional[Dict[str, Any]] = None
        self._sim_report_lock = threading.Lock()
        self._avg_job_s = 1.0
        self._accepting = True
        self._stopped = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"synth-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        if self.telemetry is not None:
            self.telemetry.start()

    # -- submission -------------------------------------------------------------

    def submit(
        self,
        request: JobRequest,
        trace: Optional[TraceContext] = None,
    ) -> Tuple[Job, bool]:
        """Admit (or coalesce) a request.

        Args:
            request: the validated synthesis ask.
            trace: request-scoped trace context (propagated from the
                HTTP headers by the API layer).  When observability is
                recording and no context was supplied, the service
                mints one so every job trace is complete; when
                observability is off nothing is allocated.

        Returns:
            ``(job, coalesced)`` — ``coalesced`` is True when the
            request was attached to an identical in-flight job instead
            of enqueueing a new one.

        Raises:
            ServiceClosedError: the service is shutting down.
            ServiceOverloadError: admission control rejected it; retry
                after the error's ``retry_after_s``.
            ServiceError: the request is invalid.
        """
        if (
            request.timeout_s is None
            and self.default_timeout_s is not None
        ):
            request = dataclasses.replace(
                request, timeout_s=self.default_timeout_s
            )
        if trace is None and obs.enabled():
            trace = TraceContext.mint(origin="service.submit")
        signature = request.signature()
        obs.inc("service.requests")
        with self._lock:
            self.stats.requests += 1
            if not self._accepting:
                raise ServiceClosedError("service is shutting down")
            inflight_id = self._inflight.get(signature)
            if inflight_id is not None:
                job = self._jobs[inflight_id]
                if not job.state.finished:
                    job.coalesced += 1
                    self.stats.deduped += 1
                    obs.inc("service.dedup")
                    _log.debug(
                        "coalesced request onto %s (sig %s)",
                        job.id, signature[:12],
                    )
                    return job, True
            self._next_id += 1
            job = Job(
                id=f"job-{self._next_id:06d}",
                request=request,
                signature=signature,
                trace=trace,
            )
            try:
                self._queue.put(job, retry_after_s=self._retry_after())
            except ServiceOverloadError:
                # Only true admission-control rejections count as
                # ``rejected``; a closed-queue ServiceClosedError is a
                # lifecycle condition, not a client being turned away
                # by load, and propagates uncounted.
                self.stats.rejected += 1
                obs.inc("service.rejected")
                raise
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._inflight[signature] = job.id
            self.stats.accepted += 1
            self._trim_history()
        obs.inc("service.accepted")
        obs.set_gauge("service.queue_depth", len(self._queue))
        return job, False

    def _retry_after(self) -> float:
        """Load-derived overload hint (call under ``self._lock``)."""
        backlog = len(self._queue) + self._running
        estimate = backlog * self._avg_job_s / max(1, self.workers)
        return min(60.0, max(1.0, estimate))

    def _trim_history(self) -> None:
        """Evict oldest *finished* jobs past the bound (under lock)."""
        while len(self._order) > self._max_history:
            for index, job_id in enumerate(self._order):
                job = self._jobs[job_id]
                if job.state.finished:
                    del self._order[index]
                    del self._jobs[job_id]
                    break
            else:
                return  # everything live; let history exceed the bound

    # -- queries ----------------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        """Look up a job by id (``None`` when unknown/evicted)."""
        with self._lock:
            return self._jobs.get(job_id)

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Optional[Job]:
        """Block until a job finishes; ``None`` for unknown ids.

        Raises:
            ServiceError: the wait timed out.
        """
        job = self.job(job_id)
        if job is None:
            return None
        if not job.wait(timeout):
            raise ServiceError(
                f"timed out waiting for {job_id} after {timeout}s"
            )
        return job

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job (or ``None``)."""
        job = self.job(job_id)
        if job is not None and not job.state.finished:
            job.cancel()
            obs.inc("service.cancel_requests")
        return job

    def _sim_backend_report(self) -> Dict[str, Any]:
        """Resolved simulator-backend summary for ``/healthz``, cached.

        Resolving the backend imports :mod:`repro.sim.jit` and may
        probe a C compiler via subprocess, so this must never run
        under ``self._lock`` — a slow probe would stall every
        ``submit``/``_finalize`` behind a health check.  The resolution
        cannot change within one process, so the first answer is
        cached; the dedicated lock only stops concurrent health checks
        from probing the compiler twice.
        """
        with self._sim_report_lock:
            if self._sim_report is None:
                from repro.sim import jit as sim_jit

                self._sim_report = sim_jit.backend_report(
                    self.sim_backend
                )
            return self._sim_report

    def evaluator_stats(self) -> Dict[str, Any]:
        """Engine counters for health/metrics.

        Overridden by the sharded service, whose engines live in
        worker processes — transports must use this instead of
        reaching for ``self.evaluator`` directly.
        """
        return self.evaluator.stats.as_dict()

    def health(self) -> Dict[str, Any]:
        """Liveness/readiness view (the ``GET /healthz`` body)."""
        # Both computed outside self._lock: the backend report may
        # shell out to a compiler probe (first call only) and the
        # evaluator counters take the engine's own locks.
        sim_report = self._sim_backend_report()
        evaluator = self.evaluator_stats()
        with self._lock:
            status = "ok" if self._accepting else (
                "stopped" if self._stopped.is_set() else "draining"
            )
            return {
                "status": status,
                "board": self.board.name,
                "workers": self.workers,
                "workers_busy": self._running,
                "uptime_s": time.monotonic() - self._started_m,
                "queue_depth": len(self._queue),
                "queue_capacity": self._queue.max_depth,
                "running": self._running,
                "avg_job_s": self._avg_job_s,
                "tiered": self.tiered,
                "sim_backend": sim_report,
                "store_attached": self.store is not None,
                "telemetry_attached": self.telemetry is not None,
                "evaluator": evaluator,
                "stats": self.stats.as_dict(),
            }

    def slo_gauges(self) -> Dict[str, float]:
        """Derived service-level-objective gauges, computed at read time.

        Exported by ``GET /metricsz?format=prometheus`` (and included
        in the JSON report) so a scraper can alert on saturation and
        latency without re-deriving them from raw counters:

        - ``service.slo.queue_saturation`` — waiting jobs / capacity.
        - ``service.slo.reject_rate`` — rejected / submissions.
        - ``service.slo.p99_job_wall_s`` — p99 of finished-job wall
          time (0 until a job has finished).
        - ``service.slo.p99_target_s`` / ``p99_within_target`` — the
          configured objective and whether p99 currently meets it.
        """
        with self._lock:
            depth = len(self._queue)
            capacity = self._queue.max_depth
            requests = self.stats.requests
            rejected = self.stats.rejected
        summary = obs.get_registry().histogram(
            "service.job_wall_s"
        ).summary()
        p99 = float(summary.get("p99", 0.0)) if summary.get("count") else 0.0
        return {
            "service.slo.queue_saturation": depth / capacity,
            "service.slo.reject_rate": (
                rejected / requests if requests else 0.0
            ),
            "service.slo.p99_job_wall_s": p99,
            "service.slo.p99_target_s": self.slo_p99_target_s,
            "service.slo.p99_within_target": float(
                p99 <= self.slo_p99_target_s
            ),
        }

    # -- the worker side --------------------------------------------------------

    def _trace_hook(self, _event) -> None:
        """Per-candidate cancellation point inside the shared engine.

        Each worker thread registers its current job in a
        ``threading.local`` slot; the evaluator invokes this hook from
        that same thread for every candidate it touches, so a cancel or
        deadline aborts a running exploration within one candidate.
        """
        job = getattr(self._active, "job", None)
        if job is not None:
            job.check_cancelled()

    def _synthesize_pipeline(
        self, job: Job, evaluator: CandidateEvaluator
    ) -> Dict[str, Any]:
        """Default job body: the shared module-level pipeline."""
        return run_synthesis_pipeline(
            job.request,
            evaluator,
            tiered=self.tiered,
            search_chunk_size=self.search_chunk_size,
            job_id=job.id,
        )

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            if job.cancel_requested:
                self._finalize_locked(
                    job, JobState.CANCELLED,
                    error="cancelled while queued",
                )
                return
            job.state = JobState.RUNNING
            job.started_s = time.time()
            job.arm_deadline()
            self._running += 1
        obs.set_gauge("service.queue_depth", len(self._queue))
        obs.set_gauge("service.running", self._running)
        start = time.monotonic()
        # Flight-record baselines: thread CPU and peak RSS before the
        # job, plus a snapshot of the shared evaluator counters so the
        # deltas attribute work to this job (approximate when several
        # workers run concurrently — the counters are service-wide).
        job._run_started_m = start
        job._cpu_start_s = thread_cpu_s()
        job._rss_start_kb = peak_rss_kb()
        job._evals_start = self.evaluator_stats()
        self._active.job = job
        try:
            # Re-activate the request's trace context on this worker
            # thread: every span below (service.job, search.tier*,
            # store.*, model.*) records the job's trace_id.
            with activate_trace(job.trace):
                self._attempt_until_final(job)
        finally:
            self._active.job = None
            elapsed = time.monotonic() - start
            obs.observe("service.job_wall_s", elapsed)
            with self._lock:
                self._running -= 1
                self._avg_job_s = (
                    0.8 * self._avg_job_s + 0.2 * elapsed
                )
            obs.set_gauge("service.running", self._running)

    def _attempt_until_final(self, job: Job) -> None:
        """Run one job to a final state, retrying transient failures."""
        while True:
            job.attempts += 1
            try:
                with obs.span(
                    "service.job", job=job.id, attempt=job.attempts
                ):
                    job.check_cancelled()
                    result = self._pipeline(job, self.evaluator)
                self._finalize(job, JobState.DONE, result=result)
                return
            except JobCancelledError as exc:
                self._finalize(job, JobState.CANCELLED, error=str(exc))
                return
            except self.transient as exc:
                if job.attempts > self.max_retries:
                    self._finalize(
                        job,
                        JobState.FAILED,
                        error=(
                            f"transient failure persisted through "
                            f"{job.attempts} attempts: {exc}"
                        ),
                    )
                    return
                with self._lock:
                    self.stats.retries += 1
                obs.inc("service.retries")
                delay = self.retry_backoff_s * (
                    2 ** (job.attempts - 1)
                )
                _log.warning(
                    "%s attempt %d hit transient %s; retrying in %.2fs",
                    job.id, job.attempts, type(exc).__name__, delay,
                )
                try:
                    # Cancellable backoff: wakes on an explicit cancel
                    # and is bounded by the job's deadline, so a dead
                    # job never pins this worker for the full delay.
                    job.wait_backoff(delay)
                except JobCancelledError as cancelled:
                    self._finalize(
                        job, JobState.CANCELLED, error=str(cancelled)
                    )
                    return
            except ReproError as exc:
                self._finalize(
                    job,
                    JobState.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
            except Exception as exc:  # never take a worker down
                _log.error("%s crashed: %s", job.id, exc)
                self._finalize(
                    job,
                    JobState.FAILED,
                    error=f"internal error: {type(exc).__name__}: {exc}",
                )
                return

    def _finalize(self, job: Job, state: JobState, **kw) -> None:
        with self._lock:
            self._finalize_locked(job, state, **kw)

    def _finalize_locked(
        self,
        job: Job,
        state: JobState,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        job.state = state
        job.finished_s = time.time()
        job.result = result
        job.error = error
        job.flight = self._flight_record(job, state)
        if self._inflight.get(job.signature) == job.id:
            del self._inflight[job.signature]
        if state is JobState.DONE:
            self.stats.completed += 1
            obs.inc("service.completed")
        elif state is JobState.FAILED:
            self.stats.failed += 1
            obs.inc("service.failed")
        else:
            self.stats.cancelled += 1
            obs.inc("service.cancelled")
            if job.timed_out:
                self.stats.timeouts += 1
                obs.inc("service.timeouts")
        job.mark_finished()
        if state is JobState.DONE and self.store is not None:
            flush = getattr(self.store, "flush", None)
            if flush is not None:
                try:
                    flush()
                except StoreError as exc:  # durability is best-effort
                    _log.warning("store flush failed: %s", exc)
        if self.telemetry is not None:
            self.telemetry.record_flight(job.flight)
        _log.info(
            "%s -> %s (attempts=%d%s)",
            job.id, state.value, job.attempts,
            f", error={error}" if error else "",
        )

    def _flight_record(self, job: Job, state: JobState) -> Dict[str, Any]:
        """Resource accounting for a job reaching its terminal state.

        Called on the worker thread that ran the job (or the submitter
        for jobs cancelled while queued), so the thread-CPU delta is
        the job's own.  Set before :meth:`Job.mark_finished` flips the
        completion latch: a successful ``wait()`` always sees it.
        """
        now_m = time.monotonic()
        queue_wait = 0.0
        if job._enqueued_m is not None:
            queue_wait = (
                job._dequeued_m if job._dequeued_m is not None else now_m
            ) - job._enqueued_m
        run_s = (
            now_m - job._run_started_m
            if job._run_started_m is not None
            else 0.0
        )
        cpu_s = (
            thread_cpu_s() - job._cpu_start_s
            if job._cpu_start_s is not None
            else 0.0
        )
        rss_now = peak_rss_kb()
        rss_delta = (
            rss_now - job._rss_start_kb
            if rss_now is not None and job._rss_start_kb is not None
            else None
        )
        evals = self.evaluator_stats()
        before = job._evals_start or {}
        def delta(key: str) -> int:
            return int(evals.get(key, 0)) - int(before.get(key, 0))
        obs.observe("service.queue_wait_s", queue_wait)
        return FlightRecord(
            job_id=job.id,
            state=state.value,
            trace_id=job.trace.trace_id if job.trace else None,
            queue_wait_s=queue_wait,
            run_s=run_s,
            wall_s=job.finished_s - job.created_s,
            cpu_s=cpu_s,
            peak_rss_delta_kb=rss_delta,
            evaluations=delta("evaluated"),
            cache_hits=delta("cache_hits"),
            store_hits=delta("store_hits"),
            coalesced=job.coalesced,
            attempts=job.attempts,
        ).as_dict()

    # -- lifecycle --------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once shutdown started (admissions closed)."""
        with self._lock:
            return not self._accepting

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the service.

        Args:
            drain: finish queued and running jobs first (graceful);
                ``False`` cancels everything still pending.
            timeout: per-worker join bound.
        """
        with self._lock:
            if self._stopped.is_set():
                return
            self._accepting = False
        _log.info(
            "shutdown requested (%s)", "drain" if drain else "abort"
        )
        stranded = self._queue.close(drain=drain)
        with self._lock:
            for job in stranded:
                self._finalize_locked(
                    job, JobState.CANCELLED, error="service shutdown"
                )
            running = [
                job
                for job in self._jobs.values()
                if job.state is JobState.RUNNING
            ]
        if not drain:
            for job in running:
                job.cancel()
        for thread in self._threads:
            thread.join(timeout)
        self._stopped.set()
        if self.store is not None:
            flush = getattr(self.store, "flush", None)
            if flush is not None:
                try:
                    flush()
                except StoreError as exc:
                    # The owner may have closed the store already;
                    # durability was covered by the per-job flushes.
                    _log.warning("final store flush failed: %s", exc)
        if self.telemetry is not None:
            self.telemetry.close()
        obs.set_gauge("service.queue_depth", 0)
        obs.set_gauge("service.running", 0)
        _log.info("shutdown complete: %s", self.stats.as_dict())

    def __enter__(self) -> "SynthesisService":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown(drain=True)
