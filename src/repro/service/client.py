"""Small blocking Python client for the synthesis service.

Talks the JSON API of :mod:`repro.service.http` over stdlib
``urllib`` — no dependencies, usable from scripts, tests, CI, and the
``submit`` CLI subcommand::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8349")
    job = client.submit(benchmark="jacobi-2d", design="heterogeneous")
    result = client.wait(job["id"])
    print(result["design"]["summary"])

Overload (HTTP 429) surfaces as
:class:`~repro.errors.ServiceOverloadError` carrying the server's
retry-after hint; :meth:`ServiceClient.synthesize` honors it
automatically with a bounded number of resubmissions.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServiceError, ServiceOverloadError
from repro.obs.trace import TraceContext


class JobFailedError(ServiceError):
    """The job reached ``failed``/``cancelled`` instead of ``done``."""

    def __init__(self, message: str, job: Optional[Dict] = None):
        super().__init__(message)
        self.job = job


class ServiceClient:
    """Blocking HTTP client bound to one service base URL.

    Args:
        base_url: e.g. ``http://127.0.0.1:8349`` (trailing slash ok).
        timeout_s: per-HTTP-call socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing ---------------------------------------------------------------

    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, Any]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={
                "Content-Type": "application/json",
                **(headers or {}),
            },
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                decoded = json.loads(response.read().decode("utf-8"))
                decoded["_status"] = response.status
                return decoded
        except urllib.error.HTTPError as exc:
            detail = self._decode_error(exc)
            if exc.code == 429:
                raise ServiceOverloadError(
                    detail.get("error", "service overloaded"),
                    retry_after_s=float(
                        detail.get("retry_after_s")
                        or exc.headers.get("Retry-After")
                        or 1.0
                    ),
                ) from None
            detail["_status"] = exc.code
            return detail
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _decode_error(exc: urllib.error.HTTPError) -> Dict[str, Any]:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {"error": f"HTTP {exc.code}"}

    @staticmethod
    def _raise_for(status: int, payload: Dict[str, Any]) -> None:
        if status == 404:
            raise ServiceError(payload.get("error", "not found"))
        if status >= 400 and status != 409:
            raise ServiceError(
                payload.get("error", f"service error (HTTP {status})")
            )

    # -- API --------------------------------------------------------------------

    def submit(
        self, trace: Optional[TraceContext] = None, **request
    ) -> Dict[str, Any]:
        """POST a job; returns the job dict (``["coalesced"]`` set).

        Keyword arguments mirror the JSON job payload
        (``benchmark=``/``source=``, ``design=``, ``priority=``, ...).

        The client mints a :class:`~repro.obs.trace.TraceContext` per
        submission (or propagates ``trace``) and sends it in the
        ``X-Repro-Trace-*`` headers, so the server-side job — and every
        span it produces — carries this request's trace id.  The
        returned job dict includes ``trace_id``; fetch the merged trace
        with :meth:`trace`.

        Raises:
            ServiceOverloadError: admission control rejected (429).
            ServiceError: malformed request or draining service.
        """
        if trace is None:
            trace = TraceContext.mint(origin="service.client")
        payload = self._call(
            "POST", "/jobs", request, headers=trace.to_headers()
        )
        status = payload.pop("_status", 500)
        self._raise_for(status, payload)
        job = payload["job"]
        job["coalesced"] = payload["coalesced"]
        return job

    def job(self, job_id: str) -> Dict[str, Any]:
        """GET one job's status."""
        payload = self._call("GET", f"/jobs/{job_id}")
        self._raise_for(payload.pop("_status", 500), payload)
        return payload

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """GET a job's result; ``None`` while still in flight.

        Raises:
            JobFailedError: the job failed or was cancelled.
            ServiceError: unknown job id.
        """
        payload = self._call("GET", f"/jobs/{job_id}/result")
        status = payload.pop("_status", 500)
        if status == 202:
            return None
        if status == 409:
            raise JobFailedError(
                f"job {job_id} {payload.get('state')}: "
                f"{payload.get('error')}",
                job=payload,
            )
        self._raise_for(status, payload)
        return payload["result"]

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job finishes; return its result payload.

        Polling backs off geometrically from ``poll_s`` to 1s.

        Raises:
            JobFailedError / ServiceError: as :meth:`result`, plus a
            :class:`ServiceError` on wait timeout.
        """
        deadline = time.monotonic() + timeout_s
        delay = poll_s
        while True:
            result = self.result(job_id)
            if result is not None:
                return result
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"after {timeout_s:g}s"
                )
            time.sleep(delay)
            delay = min(1.0, delay * 1.5)

    def synthesize(
        self,
        max_submit_attempts: int = 5,
        timeout_s: float = 300.0,
        **request,
    ) -> Dict[str, Any]:
        """Submit-and-wait convenience, honoring 429 retry-after.

        Raises:
            ServiceError: ``max_submit_attempts < 1`` (no submit could
                ever happen — fail loudly, not with an
                ``UnboundLocalError``).
        """
        if max_submit_attempts < 1:
            raise ServiceError(
                f"max_submit_attempts must be >= 1, "
                f"got {max_submit_attempts}"
            )
        for attempt in range(max_submit_attempts):
            try:
                job = self.submit(**request)
                break
            except ServiceOverloadError as exc:
                if attempt == max_submit_attempts - 1:
                    raise
                time.sleep(exc.retry_after_s)
        return self.wait(job["id"], timeout_s=timeout_s)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """DELETE a job (request cancellation)."""
        payload = self._call("DELETE", f"/jobs/{job_id}")
        self._raise_for(payload.pop("_status", 500), payload)
        return payload

    def trace(self, job_id: str) -> Dict[str, Any]:
        """GET a job's merged Chrome/Perfetto trace JSON.

        Raises:
            ServiceError: unknown job, or no trace was recorded
                (observability disabled on the server).
        """
        payload = self._call("GET", f"/jobs/{job_id}/trace")
        self._raise_for(payload.pop("_status", 500), payload)
        return payload

    def flight(self, job_id: str) -> Optional[Dict[str, Any]]:
        """GET a job's flight record (``None`` until it finishes)."""
        return self.job(job_id).get("flight")

    def health(self) -> Dict[str, Any]:
        """GET /healthz."""
        payload = self._call("GET", "/healthz")
        self._raise_for(payload.pop("_status", 500), payload)
        return payload

    def metrics(self) -> Dict[str, Any]:
        """GET /metricsz (the observability run report + service stats)."""
        payload = self._call("GET", "/metricsz")
        self._raise_for(payload.pop("_status", 500), payload)
        return payload

    def metrics_prometheus(self) -> str:
        """GET /metricsz?format=prometheus (raw exposition text)."""
        request = urllib.request.Request(
            self.base_url + "/metricsz?format=prometheus"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from exc
