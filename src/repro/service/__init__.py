"""repro.service — synthesis-as-a-service.

The paper's push-button compile/DSE pipeline, packaged as a resident
service: a bounded priority job queue with admission control, a worker
pool sharing one warm :class:`~repro.dse.evaluator.CandidateEvaluator`
(and, optionally, a persistent :class:`~repro.store.DesignStore`),
request dedup/coalescing on content signatures, per-job timeouts,
cancellation, bounded retry, and graceful drain shutdown — exposed
over a stdlib HTTP JSON API with a small blocking client.

Start one in-process::

    from repro.service import JobRequest, SynthesisService

    with SynthesisService(workers=2) as service:
        job, _ = service.submit(JobRequest(benchmark="jacobi-2d"))
        service.wait(job.id)
        print(job.result["design"]["summary"])

or over HTTP (``python -m repro.experiments serve``), then talk to it
with :class:`~repro.service.client.ServiceClient` or curl.  Full API
and lifecycle semantics: ``docs/SERVICE.md``.
"""

from repro.service.aserver import AsyncFrontDoor, make_async_server
from repro.service.client import JobFailedError, ServiceClient
from repro.service.core import (
    DEFAULT_TRANSIENT,
    ServiceStats,
    SynthesisService,
    program_result_payload,
    result_payload,
    run_synthesis_pipeline,
)
from repro.service.http import (
    ServiceHTTPServer,
    make_server,
    write_result_program,
)
from repro.service.jobs import Job, JobRequest, JobState
from repro.service.queue import JobQueue
from repro.service.routes import Response, handle_request
from repro.service.shard import ShardedSynthesisService

__all__ = [
    "AsyncFrontDoor",
    "DEFAULT_TRANSIENT",
    "Job",
    "JobFailedError",
    "JobQueue",
    "JobRequest",
    "JobState",
    "Response",
    "ServiceClient",
    "ServiceHTTPServer",
    "ServiceStats",
    "ShardedSynthesisService",
    "SynthesisService",
    "handle_request",
    "make_async_server",
    "make_server",
    "program_result_payload",
    "result_payload",
    "run_synthesis_pipeline",
    "write_result_program",
]
