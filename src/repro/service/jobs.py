"""Job model for the synthesis service.

A :class:`JobRequest` is the validated, canonicalized form of one
synthesis ask — everything :func:`repro.api.synthesize` needs, in
JSON-able primitives.  Its :meth:`~JobRequest.signature` is a content
digest over exactly the fields that determine the synthesized output,
so two requests with equal signatures are interchangeable: the service
coalesces them onto one in-flight :class:`Job`, and repeat requests
after completion warm-start from the evaluator memo and the persistent
:class:`~repro.store.backing.DesignStore`.

Scheduling knobs (``priority``, ``timeout_s``) are deliberately *not*
part of the signature — they change when a job runs, never what it
produces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import JobCancelledError, ServiceError
from repro.obs.trace import TraceContext
from repro.store.backing import digest

#: Request fields that shape the synthesized output (signature inputs).
_CONTENT_FIELDS = (
    "benchmark",
    "source",
    "program",
    "schedule",
    "name",
    "field_map",
    "aux",
    "grid_shape",
    "iterations",
    "tile_shape",
    "counts",
    "fused_depth",
    "unroll",
    "design",
)
#: Scheduling-only fields accepted alongside the content fields.
_SCHED_FIELDS = ("priority", "timeout_s")


class JobState(str, Enum):
    """Lifecycle of a job (see ``docs/SERVICE.md``)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        """True once the job can never run again."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def _int_tuple(name: str, value) -> Optional[Tuple[int, ...]]:
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or not value:
        raise ServiceError(f"{name} must be a non-empty list of ints")
    try:
        return tuple(int(v) for v in value)
    except (TypeError, ValueError):
        raise ServiceError(f"{name} must contain only integers") from None


@dataclass(frozen=True)
class JobRequest:
    """One validated synthesis request.

    Exactly one of ``benchmark`` / ``source`` / ``program`` must be
    set; the remaining fields mirror :func:`repro.api.synthesize` (see
    there for semantics).  ``program`` names a multi-stage program
    benchmark (:data:`repro.program.library.PROGRAM_BENCHMARKS`) and
    routes the job through the program-level search; ``schedule``
    picks its composition schedule.  ``priority`` orders the queue —
    higher runs first; ``timeout_s`` bounds the job's wall time once
    it starts.
    """

    benchmark: Optional[str] = None
    source: Optional[str] = None
    program: Optional[str] = None
    schedule: str = "coresident"
    name: str = "user-stencil"
    field_map: Optional[Mapping[str, str]] = None
    aux: Tuple[str, ...] = ()
    grid_shape: Optional[Tuple[int, ...]] = None
    iterations: Optional[int] = None
    tile_shape: Optional[Tuple[int, ...]] = None
    counts: Optional[Tuple[int, ...]] = None
    fused_depth: Optional[int] = None
    unroll: int = 1
    design: str = "heterogeneous"
    priority: int = 0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        provided = sum(
            v is not None
            for v in (self.benchmark, self.source, self.program)
        )
        if provided != 1:
            raise ServiceError(
                "a job needs exactly one of 'benchmark', 'source', or "
                "'program'"
            )
        if self.schedule not in ("coresident", "timeshared"):
            raise ServiceError(
                f"unknown program schedule {self.schedule!r} (expected "
                "coresident/timeshared)"
            )
        if self.design not in ("baseline", "pipe-shared", "heterogeneous"):
            raise ServiceError(
                f"unknown design kind {self.design!r} (expected "
                "baseline/pipe-shared/heterogeneous)"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServiceError("timeout_s must be positive")

    @classmethod
    def from_json(cls, payload: Any) -> "JobRequest":
        """Build a request from a decoded JSON object, strictly.

        Unknown keys are rejected — a typo'd field silently changing
        the dedup signature would be far worse than a 400.
        """
        if not isinstance(payload, dict):
            raise ServiceError("job payload must be a JSON object")
        unknown = (
            set(payload) - set(_CONTENT_FIELDS) - set(_SCHED_FIELDS)
        )
        if unknown:
            raise ServiceError(
                f"unknown job field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                benchmark=payload.get("benchmark"),
                source=payload.get("source"),
                program=payload.get("program"),
                schedule=payload.get("schedule", "coresident"),
                name=payload.get("name", "user-stencil"),
                field_map=payload.get("field_map"),
                aux=tuple(payload.get("aux", ())),
                grid_shape=_int_tuple(
                    "grid_shape", payload.get("grid_shape")
                ),
                iterations=payload.get("iterations"),
                tile_shape=_int_tuple(
                    "tile_shape", payload.get("tile_shape")
                ),
                counts=_int_tuple("counts", payload.get("counts")),
                fused_depth=payload.get("fused_depth"),
                unroll=int(payload.get("unroll", 1)),
                design=payload.get("design", "heterogeneous"),
                priority=int(payload.get("priority", 0)),
                timeout_s=payload.get("timeout_s"),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job payload: {exc}") from exc

    def content(self) -> Dict[str, Any]:
        """The signature-relevant fields, JSON-canonicalizable."""
        return {
            "benchmark": self.benchmark,
            "source": self.source,
            "program": self.program,
            "schedule": self.schedule,
            "name": self.name,
            "field_map": (
                dict(sorted(self.field_map.items()))
                if self.field_map
                else None
            ),
            "aux": list(self.aux),
            "grid_shape": (
                list(self.grid_shape) if self.grid_shape else None
            ),
            "iterations": self.iterations,
            "tile_shape": (
                list(self.tile_shape) if self.tile_shape else None
            ),
            "counts": list(self.counts) if self.counts else None,
            "fused_depth": self.fused_depth,
            "unroll": self.unroll,
            "design": self.design,
        }

    def signature(self) -> str:
        """Content digest keying dedup/coalescing (see module doc)."""
        return digest(self.content())

    def as_dict(self) -> Dict[str, Any]:
        """Full JSON-able view (content + scheduling knobs)."""
        data = self.content()
        data["priority"] = self.priority
        data["timeout_s"] = self.timeout_s
        return data


@dataclass
class Job:
    """One unit of service work and its mutable lifecycle state.

    All mutation happens under the owning service's lock; readers get
    consistent snapshots via :meth:`as_dict`.
    """

    id: str
    request: JobRequest
    signature: str
    state: JobState = JobState.QUEUED
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    timed_out: bool = False
    #: Requests that coalesced onto this job after submission.
    coalesced: int = 0
    result: Optional[Dict[str, Any]] = None
    #: Request-scoped trace context (client-minted or server-minted);
    #: re-activated on the worker thread so every span the job opens —
    #: across the evaluator's pool threads too — shares one trace_id.
    trace: Optional[TraceContext] = field(default=None, repr=False)
    #: Resource accounting, set atomically with the terminal state
    #: (before the completion latch flips), so a waiter never observes
    #: a finished job without its flight record.
    flight: Optional[Dict[str, Any]] = None
    _cancel: threading.Event = field(
        default_factory=threading.Event, repr=False
    )
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False
    )
    #: Monotonic deadline, armed when the job starts running.
    _deadline: Optional[float] = field(default=None, repr=False)
    # Worker-side accounting stamps (monotonic / thread-CPU / RSS),
    # written by the queue and the worker, read when finalizing.
    _enqueued_m: Optional[float] = field(default=None, repr=False)
    _dequeued_m: Optional[float] = field(default=None, repr=False)
    _run_started_m: Optional[float] = field(default=None, repr=False)
    _cpu_start_s: Optional[float] = field(default=None, repr=False)
    _rss_start_kb: Optional[int] = field(default=None, repr=False)
    _evals_start: Optional[Dict[str, Any]] = field(
        default=None, repr=False
    )

    def cancel(self) -> None:
        """Request cancellation (takes effect at the next checkpoint)."""
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def arm_deadline(self) -> None:
        """Start the ``timeout_s`` clock (called when the job starts)."""
        if self.request.timeout_s is not None:
            self._deadline = time.monotonic() + self.request.timeout_s

    def check_cancelled(self) -> None:
        """Raise :class:`JobCancelledError` at a cancellation point.

        The service's pipeline calls this between stages and from the
        evaluator's per-candidate trace hook, so cancellation and
        timeouts cut into a running exploration rather than waiting it
        out.
        """
        if self._cancel.is_set():
            raise JobCancelledError(f"job {self.id} cancelled")
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.timed_out = True
            raise JobCancelledError(
                f"job {self.id} exceeded its "
                f"{self.request.timeout_s:g}s timeout"
            )

    def wait_backoff(self, delay: float) -> None:
        """Sleep between retry attempts without ignoring cancellation.

        A plain ``time.sleep`` would let a cancelled or
        deadline-expired job pin a worker for the full backoff.  This
        waits on the cancel event instead (an explicit cancel wakes
        the worker immediately), bounds the wait by the remaining
        deadline, and re-checks via :meth:`check_cancelled` before the
        next attempt — raising :class:`JobCancelledError` rather than
        retrying a job that is already dead.
        """
        remaining = delay
        if self._deadline is not None:
            remaining = min(
                remaining, max(0.0, self._deadline - time.monotonic())
            )
        if remaining > 0:
            self._cancel.wait(remaining)
        self.check_cancelled()

    def mark_finished(self) -> None:
        """Flip the completion latch (after state is final)."""
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True if it did in time."""
        return self._done.wait(timeout)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able status view (the ``GET /jobs/<id>`` body)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "signature": self.signature,
            "request": self.request.as_dict(),
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "attempts": self.attempts,
            "coalesced": self.coalesced,
            "timed_out": self.timed_out,
            "error": self.error,
            "has_result": self.result is not None,
            "trace_id": self.trace.trace_id if self.trace else None,
            "flight": self.flight,
        }
