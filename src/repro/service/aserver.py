"""Asyncio HTTP front door over the synthesis service.

The threaded front door (:mod:`repro.service.http`) spends one OS
thread per open connection — fine for a handful of clients, fatal for
thousands of pollers.  :class:`AsyncFrontDoor` serves the same JSON
API from a single event loop: connections are coroutines, so 256+
clients polling ``GET /jobs/<id>/result`` cost file descriptors, not
threads, and never starve the synthesis workers of CPU.

Design constraints, in order:

- **Stdlib only** — ``asyncio.start_server`` plus a minimal HTTP/1.1
  parser (request line, headers, ``Content-Length`` body, keep-alive).
  No h11, no aiohttp.
- **Byte-identical responses** — every request is answered by the
  shared router (:func:`repro.service.routes.handle_request`), the
  same one the threaded server uses, so the two front doors are
  interchangeable for clients and for the dedup/coalescing test suite.
- **Never block the loop** — the router does touch service locks and
  (first health check only) a compiler probe, so it runs on a small
  executor; the event loop itself only parses and ships bytes.

The loop runs on a dedicated daemon thread, which keeps the public
surface identical to ``ServiceHTTPServer``: ``server_address``,
blocking ``serve_forever()``, thread-safe ``shutdown()`` — the
``serve`` CLI wires SIGTERM-drain the same way for both frontends.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Dict, Optional, Tuple

from repro import obs
from repro.errors import ServiceError
from repro.service.core import SynthesisService
from repro.service.routes import Response, handle_request

_log = obs.get_logger("service.http")

#: Hard cap on one request head (request line + headers), bytes.
MAX_HEAD_BYTES = 32 * 1024
#: Hard cap on one request body, bytes (kernels sources are small).
MAX_BODY_BYTES = 8 * 1024 * 1024


def _render(response: Response, keep_alive: bool) -> bytes:
    """Serialize a router response as an HTTP/1.1 message."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        "Server: repro-synthd/1.0",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if response.retry_after_s is not None:
        head.append(
            f"Retry-After: {max(1, int(round(response.retry_after_s)))}"
        )
    return (
        "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + response.body
    )


class _BadRequest(Exception):
    """Unparseable request; the connection is answered 400 and closed."""


async def _read_head(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, str, Dict[str, str]]]:
    """Parse one request head; ``None`` on clean EOF between requests."""
    request_line = await reader.readline()
    if not request_line:
        return None
    if len(request_line) > MAX_HEAD_BYTES:
        raise _BadRequest("request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest("malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise _BadRequest(f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEAD_BYTES:
            raise _BadRequest("request head too large")
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise _BadRequest("connection closed inside headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line {line!r}")
        # Original casing is preserved (trace-context propagation
        # looks headers up case-insensitively but encodes canonical
        # casing); duplicate names keep the last value.
        headers[name.strip()] = value.strip()
    return method.upper(), target, version, headers


def _header(headers: Dict[str, str], name: str) -> Optional[str]:
    value = headers.get(name)
    if value is not None:
        return value
    lowered = name.lower()
    for key, val in headers.items():
        if key.lower() == lowered:
            return val
    return None


class AsyncFrontDoor:
    """Single-event-loop HTTP server for the synthesis service.

    The loop lives on an internal daemon thread so the constructor's
    caller keeps a plain blocking interface:

    >>> door = AsyncFrontDoor(service, port=0)
    >>> host, port = door.start()      # binds; returns the address
    >>> ...                            # clients connect
    >>> door.shutdown()                # stop accepting, close, join

    ``serve_forever()`` blocks the calling thread until ``shutdown()``
    — drop-in for the threaded server in the ``serve`` CLI.
    """

    def __init__(
        self,
        service: SynthesisService,
        host: str = "127.0.0.1",
        port: int = 8349,
        router_threads: int = 8,
    ):
        self.service = service
        self.server_address: Tuple[str, int] = (host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._executor = ThreadPoolExecutor(
            max_workers=router_threads,
            thread_name_prefix="async-router",
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._thread is not None:
            return self.server_address
        self._thread = threading.Thread(
            target=self._run_loop, name="async-front-door", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("async front door failed to start in 30s")
        if self._boot_error is not None:
            raise ServiceError(
                f"async front door failed to bind "
                f"{self.server_address}: {self._boot_error}"
            )
        return self.server_address

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        self.start()
        self._done.wait()

    def shutdown(self) -> None:
        """Stop accepting, close connections, join the loop thread."""
        if self._thread is None:
            return
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=30)
        self._executor.shutdown(wait=False)

    def server_close(self) -> None:
        """Alias for :meth:`shutdown` (ThreadingHTTPServer parity)."""
        self.shutdown()

    def __enter__(self) -> "AsyncFrontDoor":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # -- the loop thread ------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        finally:
            self._ready.set()  # unblock start() on any boot failure
            self._done.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        host, port = self.server_address
        try:
            server = await asyncio.start_server(
                self._handle_connection, host, port
            )
        except OSError as exc:
            self._boot_error = exc
            return
        self.server_address = server.sockets[0].getsockname()[:2]
        _log.info(
            "synthesis service listening on http://%s:%d (async)",
            *self.server_address,
        )
        self._ready.set()
        async with server:
            await self._stop.wait()
        # asyncio.run cancels the outstanding connection coroutines on
        # the way out; their finally blocks close the writers.

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        obs.inc("service.http.connections")
        try:
            while True:
                head = await _read_head(reader)
                if head is None:
                    return  # client closed between requests
                method, target, version, headers = head
                length = int(_header(headers, "Content-Length") or 0)
                if length > MAX_BODY_BYTES:
                    writer.write(
                        _render(
                            Response(413, b'{"error": "body too large"}\n'),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                body = await reader.readexactly(length) if length else b""
                connection = (_header(headers, "Connection") or "").lower()
                keep_alive = (
                    connection != "close"
                    if version == "HTTP/1.1"
                    else connection == "keep-alive"
                )
                # The router touches service locks (and, once, a
                # compiler probe under /healthz): keep it off the
                # event loop so parsing/shipping for the other
                # thousands of connections never stalls behind it.
                response = await asyncio.get_running_loop().run_in_executor(
                    self._executor,
                    handle_request,
                    self.service,
                    method,
                    target,
                    headers,
                    body,
                )
                writer.write(_render(response, keep_alive=keep_alive))
                await writer.drain()
                obs.inc(f"service.http.{response.status}")
                if not keep_alive:
                    return
        except _BadRequest as exc:
            try:
                writer.write(
                    _render(
                        Response(
                            400,
                            f'{{"error": "{exc}"}}\n'.encode("utf-8"),
                        ),
                        keep_alive=False,
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            TimeoutError,
            OSError,
        ):
            # Client hung up mid-request or mid-reply — routine for
            # poll loops; count it, never traceback.
            obs.inc("service.http.client_disconnects")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def make_async_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8349,
) -> AsyncFrontDoor:
    """Bind the asyncio JSON API; ``port=0`` picks a free port.

    Mirrors :func:`repro.service.http.make_server`: the returned
    front door is already bound (``server_address`` is real) and the
    caller drives ``serve_forever()`` / ``shutdown()``.
    """
    door = AsyncFrontDoor(service, host=host, port=port)
    door.start()
    return door
