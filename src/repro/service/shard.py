"""Process-sharded synthesis service: dispatcher + replica pool.

One Python process caps the service's throughput no matter how warm
the evaluator memo is — the analytical model is cheap, but scoring is
pure Python under one GIL.  :class:`ShardedSynthesisService` keeps the
whole dispatcher brain of :class:`~repro.service.core.SynthesisService`
(admission control, dedup/coalescing, priority queue, retries,
history, SLO gauges) and moves only the job *bodies* into N worker
processes:

- the **dispatcher** (this process) owns the queue and the job
  lifecycle; its worker threads become forwarding threads, each bound
  1:1 to a replica;
- each **replica** is a spawned process running a warm
  :class:`~repro.dse.evaluator.CandidateEvaluator`, with its own
  writer slot in the shared content-addressed
  :class:`~repro.store.DesignStore` (``journal-replica-<i>.jsonl``) —
  the store's signature keying is what makes concurrent and repeated
  evaluations exactly-once-equivalent: any replica computing the same
  design under the same context writes the same record under the same
  key;
- results, evaluator-counter deltas, and the job's trace spans ship
  back over a duplex pipe; the dispatcher re-injects spans into its
  recorder (remapped seqs, wall-clock-aligned timebase) so ``GET
  /jobs/<id>/trace`` shows replica work, and aggregates the counter
  deltas into per-replica ``service.replica.<i>.*`` metrics.

Job bodies run :func:`~repro.service.core.run_synthesis_pipeline`
— the same function the single-process service runs — so result
payloads are byte-identical to the threaded path by construction.

**Cancellation across the process boundary.** Each replica pair shares
a ``multiprocessing.Event``: the forwarding thread sets it when the
job is cancelled dispatcher-side, and the replica's per-candidate
trace hook raises :class:`~repro.errors.JobCancelledError` at the next
candidate, exactly like the in-process hook.  Deadlines are shipped as
remaining seconds and re-armed on the replica's own monotonic clock.

**Failure modes.** A replica that dies mid-job is restarted and the
job resurfaces as a :class:`~repro.errors.TransientServiceError`, so
the dispatcher's existing bounded-retry machinery re-dispatches it to
the fresh process.  The replica flushes its store journal after every
job, so at most the in-flight job's writes are lost — and those are
recomputed, never corrupted (content-addressed, torn-tail-tolerant).

Replicas are spawned (never forked): the dispatcher is multithreaded,
and ``fork`` in a threaded process is a deadlock lottery.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

import repro.errors as repro_errors
from repro import obs
from repro.errors import (
    JobCancelledError,
    ReproError,
    ServiceError,
    StoreError,
    TransientServiceError,
)
from repro.model.predictor import Fidelity
from repro.obs import core as obs_core
from repro.obs.record import TelemetryJournal
from repro.obs.spans import SpanRecord
from repro.obs.trace import TraceContext, activate as activate_trace
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.service.core import (
    DEFAULT_TRANSIENT,
    SynthesisService,
    run_synthesis_pipeline,
)
from repro.service.jobs import Job

_log = obs.get_logger("service.shard")

#: How long a freshly spawned replica may take to import the framework
#: and report ready (cold numpy imports on a loaded CI box are slow).
SPAWN_TIMEOUT_S = 120.0

#: Forwarding threads poll the replica pipe at this period while a job
#: runs — it bounds how stale a dispatcher-side cancel can be.
POLL_PERIOD_S = 0.05

#: Backstop: if a replica blows through its deadline by this much
#: without cancelling itself, the dispatcher forces the cancel event.
DEADLINE_GRACE_S = 5.0


@dataclass(frozen=True)
class ReplicaConfig:
    """Everything a replica needs to build its engine (picklable)."""

    board: BoardSpec
    fidelity: Fidelity
    store_root: Optional[str]
    store_sync: str
    tiered: bool
    search_chunk_size: int
    max_memo_entries: Optional[int]
    sim_backend: Optional[str]
    transient: Tuple[Type[BaseException], ...]
    obs_enabled: bool
    obs_capture_spans: bool


def _replica_main(index: int, config: ReplicaConfig, conn, cancel_event):
    """Replica process entry point: warm engine + run-loop."""
    from repro.dse.evaluator import CandidateEvaluator
    from repro.store.backing import DesignStore

    if config.obs_enabled:
        # Mirror the dispatcher's recording mode so spans exist to
        # ship back; simulator event capture stays off (never shipped).
        obs.enable(
            capture_events=False,
            capture_spans=config.obs_capture_spans,
        )
    store = None
    if config.store_root:
        store = DesignStore(
            config.store_root,
            sync=config.store_sync,
            writer=f"replica-{index}",
        )
    state: Dict[str, Any] = {
        "job_id": "?", "timeout_s": None, "deadline": None,
        "timed_out": False,
    }

    def _cancel_hook(_event) -> None:
        # The replica-side twin of SynthesisService._trace_hook: the
        # evaluator calls it per candidate, so a dispatcher cancel or
        # the job deadline cuts into a running exploration.
        if cancel_event.is_set():
            raise JobCancelledError(f"job {state['job_id']} cancelled")
        deadline = state["deadline"]
        if deadline is not None and time.monotonic() > deadline:
            state["timed_out"] = True
            raise JobCancelledError(
                f"job {state['job_id']} exceeded its "
                f"{state['timeout_s']:g}s timeout"
            )

    evaluator = CandidateEvaluator(
        board=config.board,
        fidelity=config.fidelity,
        store=store,
        trace=_cancel_hook,
        max_memo_entries=config.max_memo_entries,
    )
    try:
        conn.send({"op": "ready", "replica": index, "pid": os.getpid()})
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # dispatcher went away
            if not isinstance(message, dict) or message.get("op") != "run":
                break  # {"op": "stop"} or garbage: exit cleanly
            conn.send(
                _replica_run_one(
                    index, message, evaluator, config, state, cancel_event
                )
            )
    finally:
        if store is not None:
            try:
                store.close()
            except StoreError:
                pass
        try:
            conn.close()
        except OSError:
            pass


def _replica_run_one(
    index: int,
    message: Dict[str, Any],
    evaluator,
    config: ReplicaConfig,
    state: Dict[str, Any],
    cancel_event,
) -> Dict[str, Any]:
    """Run one job on the replica's warm engine; never raises."""
    job_id = message["job_id"]
    request = message["request"]
    trace: Optional[TraceContext] = message.get("trace")
    state["job_id"] = job_id
    state["timeout_s"] = request.timeout_s
    state["timed_out"] = False
    timeout_s = message.get("timeout_s")
    state["deadline"] = (
        time.monotonic() + timeout_s if timeout_s is not None else None
    )
    before = evaluator.stats.as_dict()
    reply: Dict[str, Any] = {
        "op": "done", "job_id": job_id, "replica": index,
    }
    try:
        with activate_trace(trace):
            payload = run_synthesis_pipeline(
                request,
                evaluator,
                tiered=config.tiered,
                search_chunk_size=config.search_chunk_size,
                job_id=job_id,
            )
        reply.update(status="ok", payload=payload)
    except JobCancelledError as exc:
        reply.update(
            status="cancelled",
            error=str(exc),
            timed_out=state["timed_out"],
        )
    except config.transient as exc:
        reply.update(
            status="transient",
            error=str(exc),
            error_type=type(exc).__name__,
        )
    except ReproError as exc:
        reply.update(
            status="failed",
            error=str(exc),
            error_type=type(exc).__name__,
        )
    except Exception as exc:  # parity with the in-process worker
        reply.update(
            status="failed",
            error=f"internal error: {type(exc).__name__}: {exc}",
            error_type=None,
        )
    finally:
        state["deadline"] = None
    if evaluator.store is not None:
        try:
            # Per-job durability, mirroring the dispatcher-side flush
            # the single-process service does on every DONE job.
            evaluator.store.flush()
        except StoreError as exc:
            _log.warning("replica %d store flush failed: %s", index, exc)
    after = evaluator.stats.as_dict()
    reply["evals"] = {
        key: after[key] - before.get(key, 0) for key in after
    }
    if trace is not None and obs.enabled() and obs.capture_spans():
        reply["spans"] = [
            span.as_dict()
            for span in obs.recorder.spans()
            if span.trace_id == trace.trace_id
        ]
        # Anchor for the dispatcher's timebase alignment: this
        # replica's "now" in both wall-clock and epoch-relative terms.
        reply["span_clock"] = {
            "wall": time.time(),
            "rel": time.perf_counter() - obs_core.epoch(),
        }
        obs.recorder.clear()
    return reply


class _Replica:
    """Dispatcher-side handle for one worker process.

    Owned by exactly one forwarding thread after binding, so only
    ``jobs_done``/``restarts``/``evals_total`` (read by health under
    the service's replica lock) need care.
    """

    def __init__(self, index: int, config: ReplicaConfig, ctx):
        self.index = index
        self._config = config
        self._ctx = ctx
        self.jobs_done = 0
        self.restarts = 0
        self.evals_total: Dict[str, float] = {}
        self.process = None
        self.conn = None
        self.cancel_event = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.cancel_event = self._ctx.Event()
        self.process = self._ctx.Process(
            target=_replica_main,
            args=(self.index, self._config, child_conn, self.cancel_event),
            name=f"synth-replica-{self.index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        if not self.conn.poll(SPAWN_TIMEOUT_S):
            self._kill()
            raise ServiceError(
                f"replica {self.index} did not become ready "
                f"within {SPAWN_TIMEOUT_S:g}s"
            )
        boot = self.conn.recv()
        if not isinstance(boot, dict) or boot.get("op") != "ready":
            self._kill()
            raise ServiceError(
                f"replica {self.index} sent unexpected boot "
                f"message {boot!r}"
            )
        _log.info(
            "replica %d ready (pid %s)", self.index, boot.get("pid")
        )

    def run_job(self, job: Job) -> Dict[str, Any]:
        """Ship one job; forward cancellation; return the reply.

        Raises:
            TransientServiceError: the replica died (it has already
                been restarted) — the dispatcher's retry machinery
                re-dispatches the job to the fresh process.
        """
        timeout_s = None
        if job._deadline is not None:
            timeout_s = max(0.0, job._deadline - time.monotonic())
        # Fresh slate: a cancel left over from the previous job on
        # this replica must not kill this one.
        self.cancel_event.clear()
        try:
            self.conn.send(
                {
                    "op": "run",
                    "job_id": job.id,
                    "request": job.request,
                    "timeout_s": timeout_s,
                    "trace": job.trace,
                }
            )
        except (OSError, ValueError) as exc:
            self._restart()
            raise TransientServiceError(
                f"replica {self.index} unavailable for {job.id}: {exc}"
            ) from exc
        cancel_forwarded = False
        while True:
            if not cancel_forwarded and job.cancel_requested:
                self.cancel_event.set()
                cancel_forwarded = True
            if (
                not cancel_forwarded
                and job._deadline is not None
                and time.monotonic() > job._deadline + DEADLINE_GRACE_S
            ):
                # Backstop for a replica wedged outside any
                # cancellation point well past its deadline.
                self.cancel_event.set()
                cancel_forwarded = True
            try:
                if self.conn.poll(POLL_PERIOD_S):
                    reply = self.conn.recv()
                    self.jobs_done += 1
                    return reply
            except (EOFError, OSError) as exc:
                self._restart()
                raise TransientServiceError(
                    f"replica {self.index} died while running {job.id}"
                ) from exc
            if not self.process.is_alive():
                self._restart()
                raise TransientServiceError(
                    f"replica {self.index} exited while running {job.id}"
                )

    def _restart(self) -> None:
        self.restarts += 1
        obs.inc("service.replica.restarts")
        _log.warning("restarting replica %d", self.index)
        self._kill()
        self._spawn()

    def _kill(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
        if self.process is not None:
            self.process.join(10.0)

    def stop(self, timeout_s: float = 10.0) -> None:
        """Graceful stop: ask, wait, then terminate."""
        if self.process is None:
            return
        try:
            self.conn.send({"op": "stop"})
        except (OSError, ValueError):
            pass
        self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5.0)
        try:
            self.conn.close()
        except OSError:
            pass
        self.process = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ShardedSynthesisService(SynthesisService):
    """The dispatcher: base-class brain, process-pool muscle.

    Inherits the whole job lifecycle from
    :class:`~repro.service.core.SynthesisService`; the base class's
    ``workers`` threads become forwarding threads, each bound to one
    replica process, and the job body is replaced by an RPC to that
    replica.  Both HTTP front doors, the client, dedup/coalescing, and
    the retry/cancel/SLO machinery work unchanged on top.

    Args:
        store_root: directory of the shared
            :class:`~repro.store.DesignStore`; each replica opens it
            with its own writer slot (multi-writer journals).  ``None``
            runs without persistence.
        worker_processes: replica count (and forwarding-thread count).
        store_sync: journal fsync policy for the replicas' stores.
        start_method: ``multiprocessing`` start method; keep ``spawn``
            unless you know the dispatcher is single-threaded at fork
            time (it is not).
        Remaining arguments as the base class.  ``store=`` and
        ``pipeline=`` are owned by the sharding machinery and not
        accepted here.
    """

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        fidelity: Fidelity = Fidelity.REFINED,
        store_root=None,
        worker_processes: int = 2,
        store_sync: str = "batch",
        start_method: str = "spawn",
        queue_depth: int = 64,
        max_retries: int = 2,
        retry_backoff_s: float = 0.25,
        default_timeout_s: Optional[float] = None,
        max_memo_entries: Optional[int] = 4096,
        max_history: int = 1024,
        tiered: bool = False,
        search_chunk_size: int = 1024,
        transient: Tuple[Type[BaseException], ...] = DEFAULT_TRANSIENT,
        telemetry: Optional[TelemetryJournal] = None,
        slo_p99_target_s: float = 120.0,
        sim_backend: Optional[str] = None,
    ):
        if worker_processes < 1:
            raise ServiceError(
                f"worker_processes must be >= 1, got {worker_processes}"
            )
        ctx = multiprocessing.get_context(start_method)
        config = ReplicaConfig(
            board=board,
            fidelity=fidelity,
            store_root=str(store_root) if store_root is not None else None,
            store_sync=store_sync,
            tiered=tiered,
            search_chunk_size=search_chunk_size,
            max_memo_entries=max_memo_entries,
            sim_backend=sim_backend,
            transient=tuple(transient),
            obs_enabled=obs.enabled(),
            obs_capture_spans=obs.capture_spans(),
        )
        self._replica_lock = threading.Lock()
        self._slot = threading.local()
        self._replicas: List[_Replica] = []
        self._replicas_stopped = False
        try:
            for index in range(worker_processes):
                self._replicas.append(_Replica(index, config, ctx))
        except BaseException:
            for replica in self._replicas:
                replica.stop(timeout_s=5.0)
            raise
        self._unbound = list(self._replicas)
        # The base class starts the forwarding threads, which is why
        # every replica must be ready first.
        super().__init__(
            board=board,
            fidelity=fidelity,
            store=None,  # replicas own the store; see class docstring
            workers=worker_processes,
            queue_depth=queue_depth,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            default_timeout_s=default_timeout_s,
            max_memo_entries=max_memo_entries,
            max_history=max_history,
            tiered=tiered,
            search_chunk_size=search_chunk_size,
            transient=transient,
            pipeline=self._remote_pipeline,
            telemetry=telemetry,
            slo_p99_target_s=slo_p99_target_s,
            sim_backend=sim_backend,
        )
        self.worker_processes = worker_processes
        obs.set_gauge("service.replicas", worker_processes)

    # -- forwarding ---------------------------------------------------------

    def _worker_loop(self) -> None:
        # Bind this forwarding thread to one replica for its lifetime:
        # jobs on one thread always hit the same warm memo, and the
        # pipe protocol stays strictly one-job-at-a-time per replica.
        with self._replica_lock:
            self._slot.replica = self._unbound.pop()
        super()._worker_loop()

    def _remote_pipeline(self, job: Job, _evaluator) -> Dict[str, Any]:
        """Job body: RPC to this thread's replica; re-raise its verdict."""
        replica: _Replica = self._slot.replica
        reply = replica.run_job(job)
        self._absorb_reply(replica, reply)
        status = reply.get("status")
        if status == "ok":
            return reply["payload"]
        error = reply.get("error") or f"replica {replica.index} error"
        if status == "cancelled":
            if reply.get("timed_out"):
                job.timed_out = True
            raise JobCancelledError(error)
        exc_cls = getattr(repro_errors, reply.get("error_type") or "", None)
        reconstructible = (
            isinstance(exc_cls, type)
            and issubclass(exc_cls, ReproError)
            and not issubclass(exc_cls, JobCancelledError)
        )
        if status == "transient":
            if reconstructible and issubclass(exc_cls, self.transient):
                raise exc_cls(error)
            raise TransientServiceError(error)
        if reconstructible:
            # Re-raise the replica's own error type so the base
            # class's finalize message matches the in-process path.
            raise exc_cls(error)
        raise ReproError(error)

    def _absorb_reply(
        self, replica: _Replica, reply: Dict[str, Any]
    ) -> None:
        """Fold one reply's telemetry into dispatcher-side state."""
        evals = reply.get("evals") or {}
        with self._replica_lock:
            for key, value in evals.items():
                replica.evals_total[key] = (
                    replica.evals_total.get(key, 0) + value
                )
        if obs.enabled():
            prefix = f"service.replica.{replica.index}"
            obs.inc(f"{prefix}.jobs")
            for key, value in evals.items():
                if not value:
                    continue
                if key == "wall_time_s":
                    obs.observe(f"{prefix}.wall_time_s", float(value))
                else:
                    obs.inc(f"{prefix}.{key}", int(value))
        self._inject_spans(reply)

    def _inject_spans(self, reply: Dict[str, Any]) -> None:
        """Graft the replica's job spans into this process's recorder.

        Sequence ids are remapped through :func:`obs.next_seq` (the
        replica's counter collides with ours); parent links inside the
        shipped batch follow the remap, while links to dispatcher-side
        seqs (the trace context's ``parent_seq``) pass through.  The
        replica timebase is aligned via the reply's wall-clock anchor,
        so the merged Chrome trace keeps one timeline.
        """
        spans = reply.get("spans") or []
        if not spans or not (obs.enabled() and obs.capture_spans()):
            return
        clock = reply.get("span_clock") or {}
        shift = 0.0
        if "wall" in clock and "rel" in clock:
            local_rel = time.perf_counter() - obs_core.epoch()
            shift = (
                (local_rel - time.time())
                + (clock["wall"] - clock["rel"])
            )
        seq_map = {data["seq"]: obs.next_seq() for data in spans}
        replica_tag = f"replica-{reply.get('replica', '?')}"
        for data in spans:
            parent = data.get("parent_seq")
            obs.recorder.add_span(
                SpanRecord(
                    name=data["name"],
                    start_s=data["start_s"] + shift,
                    end_s=data["end_s"] + shift,
                    seq=seq_map[data["seq"]],
                    parent_seq=seq_map.get(parent, parent),
                    thread=f"{replica_tag}:{data.get('thread', '?')}",
                    attrs=data.get("attrs") or {},
                    trace_id=data.get("trace_id"),
                )
            )

    # -- views ----------------------------------------------------------------

    def evaluator_stats(self) -> Dict[str, Any]:
        """Aggregated engine counters across every replica."""
        totals = dict(self.evaluator.stats.as_dict())  # zero baseline
        with self._replica_lock:
            for replica in self._replicas:
                for key, value in replica.evals_total.items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def health(self) -> Dict[str, Any]:
        data = super().health()
        with self._replica_lock:
            data["replicas"] = [
                {
                    "index": replica.index,
                    "alive": replica.alive,
                    "pid": (
                        replica.process.pid if replica.process else None
                    ),
                    "jobs": replica.jobs_done,
                    "restarts": replica.restarts,
                }
                for replica in self._replicas
            ]
        data["worker_processes"] = len(self._replicas)
        return data

    # -- lifecycle --------------------------------------------------------------

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        super().shutdown(drain=drain, timeout=timeout)
        if self._replicas_stopped:
            return
        self._replicas_stopped = True
        for replica in self._replicas:
            replica.stop()
        _log.info("all %d replicas stopped", len(self._replicas))
