"""Threaded stdlib HTTP front door over the synthesis service.

Routes (see ``docs/SERVICE.md`` for curl examples):

- ``POST /jobs`` — submit a synthesis request; ``202`` with the job
  status (``coalesced: true`` when attached to an identical in-flight
  job), ``429`` + ``Retry-After`` when admission control rejects,
  ``503`` while draining or stopped, ``400`` on a malformed payload
  (chosen by exception type — a bad payload stays a 400 even during a
  drain).
- ``GET /jobs/<id>`` — job status (including trace id + flight record).
- ``GET /jobs/<id>/result`` — ``200`` with the result payload once
  done (the flight record rides alongside, never inside, the result —
  results stay byte-identical whether telemetry is on or off); ``202``
  with the status while queued/running; ``409`` with the error for
  failed/cancelled jobs; ``404`` for unknown ids.
- ``GET /jobs/<id>/trace`` — the job's merged Chrome/Perfetto trace:
  every span recorded under the job's trace context, across worker and
  evaluator-pool threads; ``404`` when no trace was recorded.
- ``DELETE /jobs/<id>`` — request cancellation.
- ``GET /healthz`` — service liveness: status, uptime, queue depth,
  busy workers, counters.
- ``GET /metricsz`` — the observability run report (counters, derived
  rates such as ``service.dedup_rate``, histograms, span aggregates)
  plus the service's own stats block and derived SLO gauges;
  ``?format=prometheus`` renders the same registry in the Prometheus
  text exposition format for scrapers.

``POST /jobs`` honors the ``X-Repro-Trace-*`` headers
(:mod:`repro.obs.trace`): a client-minted trace context rides the
request into the job, so the spans the job produces carry the
client's trace id end to end.

All route logic lives in :mod:`repro.service.routes`; this module is
only the :class:`http.server.ThreadingHTTPServer` binding of it.  The
asyncio binding (:mod:`repro.service.aserver`) shares the same router,
so responses are byte-identical across the two front doors.
"""

from __future__ import annotations

import pathlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro import obs
from repro.service.core import SynthesisService
from repro.service.routes import Response, handle_request, to_json_bytes

__all__ = [
    "ServiceHTTPServer",
    "make_server",
    "to_json_bytes",
    "write_result_program",
]

_log = obs.get_logger("service.http")


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to the server's service instance."""

    server_version = "repro-synthd/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SynthesisService:
        return self.server.service  # type: ignore[attr-defined]

    # BaseHTTPRequestHandler logs to stderr by default; route through
    # the structured logger instead so REPRO_LOG_* applies.
    def log_message(self, fmt: str, *args) -> None:
        _log.debug("%s %s", self.address_string(), fmt % args)

    def _dispatch(self, method: str) -> None:
        body = None
        if method == "POST":
            length = int(self.headers.get("Content-Length", 0) or 0)
            body = self.rfile.read(length) if length else b""
        response = handle_request(
            self.service, method, self.path, self.headers, body
        )
        self._send(response)

    def _send(self, response: Response) -> None:
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            if response.retry_after_s is not None:
                self.send_header(
                    "Retry-After",
                    str(max(1, int(round(response.retry_after_s)))),
                )
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-reply (poll loops do).  Not a
            # server error: count it, drop the connection, and above
            # all don't let the handler thread dump a raw traceback.
            obs.inc("service.http.client_disconnects")
            _log.debug(
                "client %s disconnected mid-reply",
                self.address_string(),
            )
            self.close_connection = True
            return
        obs.inc(f"service.http.{response.status}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib interface
        self._dispatch("POST")

    def do_GET(self) -> None:  # noqa: N802 - stdlib interface
        self._dispatch("GET")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib interface
        self._dispatch("DELETE")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying its service instance."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SynthesisService):
        super().__init__(address, _Handler)
        self.service = service


def make_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8349,
) -> ServiceHTTPServer:
    """Bind the JSON API; ``port=0`` picks a free port (tests).

    The caller drives the loop (``serve_forever``) and shutdown — see
    the ``serve`` CLI subcommand for the SIGTERM-drain wiring.
    """
    server = ServiceHTTPServer((host, port), service)
    _log.info(
        "synthesis service listening on http://%s:%d",
        *server.server_address[:2],
    )
    return server


def write_result_program(result: dict, out_dir, stem: str) -> list:
    """Drop a job result's generated sources into ``out_dir``.

    Shared by the ``submit --output`` CLI and tests; returns the
    written paths.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    program = result["program"]
    kernel = out / f"{stem}.cl"
    host = out / f"{stem}_host.c"
    kernel.write_text(program["kernel_source"])
    host.write_text(program["host_source"])
    return [kernel, host]
