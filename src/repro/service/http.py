"""Stdlib HTTP JSON API over the synthesis service.

Routes (see ``docs/SERVICE.md`` for curl examples):

- ``POST /jobs`` — submit a synthesis request; ``202`` with the job
  status (``coalesced: true`` when attached to an identical in-flight
  job), ``429`` + ``Retry-After`` when admission control rejects,
  ``503`` while draining, ``400`` on a malformed payload.
- ``GET /jobs/<id>`` — job status (including trace id + flight record).
- ``GET /jobs/<id>/result`` — ``200`` with the result payload once
  done (the flight record rides alongside, never inside, the result —
  results stay byte-identical whether telemetry is on or off); ``202``
  with the status while queued/running; ``409`` with the error for
  failed/cancelled jobs; ``404`` for unknown ids.
- ``GET /jobs/<id>/trace`` — the job's merged Chrome/Perfetto trace:
  every span recorded under the job's trace context, across worker and
  evaluator-pool threads; ``404`` when no trace was recorded.
- ``DELETE /jobs/<id>`` — request cancellation.
- ``GET /healthz`` — service liveness: status, uptime, queue depth,
  busy workers, counters.
- ``GET /metricsz`` — the observability run report (counters, derived
  rates such as ``service.dedup_rate``, histograms, span aggregates)
  plus the service's own stats block and derived SLO gauges;
  ``?format=prometheus`` renders the same registry in the Prometheus
  text exposition format for scrapers.

``POST /jobs`` honors the ``X-Repro-Trace-*`` headers
(:mod:`repro.obs.trace`): a client-minted trace context rides the
request into the job, so the spans the job produces carry the
client's trace id end to end.

Built on :class:`http.server.ThreadingHTTPServer` — no third-party
dependencies, matching the rest of the framework.
"""

from __future__ import annotations

import json
import pathlib
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro import obs
from repro.errors import ServiceError, ServiceOverloadError
from repro.obs import prom
from repro.obs.export import build_chrome_trace, run_report
from repro.obs.trace import TraceContext
from repro.service.core import SynthesisService
from repro.service.jobs import JobRequest, JobState

_log = obs.get_logger("service.http")

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[A-Za-z0-9_-]+)$")
_RESULT_PATH = re.compile(r"^/jobs/(?P<id>[A-Za-z0-9_-]+)/result$")
_TRACE_PATH = re.compile(r"^/jobs/(?P<id>[A-Za-z0-9_-]+)/trace$")


def to_json_bytes(payload: Any) -> bytes:
    """Canonical response encoding (sorted keys → byte-stable)."""
    return (
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    ).encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to the server's service instance."""

    server_version = "repro-synthd/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SynthesisService:
        return self.server.service  # type: ignore[attr-defined]

    # BaseHTTPRequestHandler logs to stderr by default; route through
    # the structured logger instead so REPRO_LOG_* applies.
    def log_message(self, fmt: str, *args) -> None:
        _log.debug("%s %s", self.address_string(), fmt % args)

    def _reply(
        self,
        status: int,
        payload: Any,
        retry_after_s: Optional[float] = None,
    ) -> None:
        body = to_json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header(
                "Retry-After", str(max(1, int(round(retry_after_s))))
            )
        self.end_headers()
        self.wfile.write(body)
        obs.inc(f"service.http.{status}")

    def _reply_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        obs.inc(f"service.http.{status}")

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from exc

    # -- routes -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib interface
        if self.path.rstrip("/") != "/jobs":
            self._reply(404, {"error": f"no such route: {self.path}"})
            return
        try:
            request = JobRequest.from_json(self._read_body())
            trace = TraceContext.from_headers(self.headers)
            job, coalesced = self.service.submit(request, trace=trace)
        except ServiceOverloadError as exc:
            self._reply(
                429,
                {
                    "error": str(exc),
                    "retry_after_s": exc.retry_after_s,
                },
                retry_after_s=exc.retry_after_s,
            )
            return
        except ServiceError as exc:
            status = 503 if self.service.draining else 400
            self._reply(status, {"error": str(exc)})
            return
        self._reply(
            202, {"job": job.as_dict(), "coalesced": coalesced}
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib interface
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._reply(200, self.service.health())
            return
        if path == "/metricsz":
            if "format=prometheus" in query:
                text = prom.render_prometheus(
                    obs.get_registry(),
                    extra_gauges=self.service.slo_gauges(),
                )
                self._reply_text(200, text, prom.CONTENT_TYPE)
                return
            report = run_report()
            report["service"] = self.service.stats.as_dict()
            report["evaluator"] = self.service.evaluator.stats.as_dict()
            report["slo"] = self.service.slo_gauges()
            self._reply(200, report)
            return
        match = _TRACE_PATH.match(path)
        if match:
            self._get_trace(match.group("id"))
            return
        match = _RESULT_PATH.match(path)
        if match:
            self._get_result(match.group("id"))
            return
        match = _JOB_PATH.match(path)
        if match:
            job = self.service.job(match.group("id"))
            if job is None:
                self._reply(404, {"error": "unknown job"})
            else:
                self._reply(200, job.as_dict())
            return
        self._reply(404, {"error": f"no such route: {path}"})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib interface
        match = _JOB_PATH.match(self.path)
        if not match:
            self._reply(404, {"error": f"no such route: {self.path}"})
            return
        job = self.service.cancel(match.group("id"))
        if job is None:
            self._reply(404, {"error": "unknown job"})
        else:
            self._reply(200, job.as_dict())

    def _get_trace(self, job_id: str) -> None:
        """The job's merged Chrome trace (spans under its trace_id)."""
        job = self.service.job(job_id)
        if job is None:
            self._reply(404, {"error": "unknown job"})
            return
        if job.trace is None:
            self._reply(
                404,
                {
                    "error": (
                        "no trace recorded for this job (enable "
                        "observability or send X-Repro-Trace-Id)"
                    )
                },
            )
            return
        self._reply(200, build_chrome_trace(trace_id=job.trace.trace_id))

    def _get_result(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job is None:
            self._reply(404, {"error": "unknown job"})
            return
        if job.state is JobState.DONE:
            # The flight record rides beside the result: the result
            # payload itself stays byte-identical with telemetry off.
            self._reply(
                200,
                {
                    "job_id": job.id,
                    "result": job.result,
                    "flight": job.flight,
                },
            )
            return
        if job.state.finished:  # failed or cancelled
            self._reply(
                409,
                {
                    "job_id": job.id,
                    "state": job.state.value,
                    "error": job.error,
                },
            )
            return
        self._reply(202, job.as_dict())


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server carrying its service instance."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SynthesisService):
        super().__init__(address, _Handler)
        self.service = service


def make_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8349,
) -> ServiceHTTPServer:
    """Bind the JSON API; ``port=0`` picks a free port (tests).

    The caller drives the loop (``serve_forever``) and shutdown — see
    the ``serve`` CLI subcommand for the SIGTERM-drain wiring.
    """
    server = ServiceHTTPServer((host, port), service)
    _log.info(
        "synthesis service listening on http://%s:%d",
        *server.server_address[:2],
    )
    return server


def write_result_program(result: dict, out_dir, stem: str) -> list:
    """Drop a job result's generated sources into ``out_dir``.

    Shared by the ``submit --output`` CLI and tests; returns the
    written paths.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    program = result["program"]
    kernel = out / f"{stem}.cl"
    host = out / f"{stem}_host.c"
    kernel.write_text(program["kernel_source"])
    host.write_text(program["host_source"])
    return [kernel, host]
