"""Bounded priority queue with admission control for the service.

A thin, dependency-free scheduling core: jobs are ordered by
``(-priority, seq)`` — higher priority first, FIFO within a priority
level — the depth is bounded, and a full queue *rejects* instead of
blocking (the service turns the rejection into an HTTP 429 with a
``Retry-After`` estimate).  Closing the queue supports both drain
(workers keep popping until empty, then see ``None``) and abort
(remaining jobs are handed back to the closer for cancellation).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import List, Optional

from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from repro.service.jobs import Job


class JobQueue:
    """Priority queue of :class:`Job` with bounded depth.

    Args:
        max_depth: admission-control bound; :meth:`put` on a full
            queue raises :class:`ServiceOverloadError`.
    """

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise ServiceError(
                f"queue max_depth must be >= 1, got {max_depth}"
            )
        self.max_depth = max_depth
        self._heap: List = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._draining = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, job: Job, retry_after_s: float = 1.0) -> None:
        """Admit a job, or reject with a retry hint.

        Raises:
            ServiceClosedError: the queue is closed (service shutting
                down) — mapped to HTTP 503, never counted as a client
                rejection.
            ServiceOverloadError: the queue is at ``max_depth``; the
                caller should surface ``retry_after_s`` to the client.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shutting down")
            if len(self._heap) >= self.max_depth:
                raise ServiceOverloadError(
                    f"queue full ({self.max_depth} jobs waiting); "
                    f"retry in {retry_after_s:.1f}s",
                    retry_after_s=retry_after_s,
                )
            job._enqueued_m = time.monotonic()
            heapq.heappush(
                self._heap, (-job.request.priority, next(self._seq), job)
            )
            self._not_empty.notify()

    def get(self) -> Optional[Job]:
        """Pop the next job, blocking; ``None`` means "worker, exit".

        After :meth:`close(drain=True) <close>` the remaining jobs are
        still handed out until the queue empties; after an abort close
        the queue is already empty and every waiter wakes to ``None``.
        """
        with self._lock:
            while not self._heap and not self._closed:
                self._not_empty.wait()
            if not self._heap:
                return None
            job = heapq.heappop(self._heap)[2]
            # Queue-wait accounting for the job's flight record.
            job._dequeued_m = time.monotonic()
            return job

    def close(self, drain: bool = True) -> List[Job]:
        """Stop admissions; wake all waiters.

        Args:
            drain: keep handing out queued jobs (graceful shutdown).
                When ``False``, the queue is emptied and the stranded
                jobs are returned so the caller can cancel them.

        Returns:
            The jobs removed from the queue (empty when draining).
        """
        with self._lock:
            self._closed = True
            self._draining = drain
            stranded: List[Job] = []
            if not drain:
                stranded = [item[2] for item in self._heap]
                self._heap.clear()
            self._not_empty.notify_all()
            return stranded
