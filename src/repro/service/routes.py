"""Transport-agnostic routing core of the service's JSON API.

Both HTTP front doors — the threaded
:class:`~repro.service.http.ServiceHTTPServer` and the asyncio
:class:`~repro.service.aserver.AsyncFrontDoor` — delegate every
request to :func:`handle_request`, so route behavior, status-code
mapping, and (critically) the byte encoding of result payloads live in
exactly one place.  A request answered by either transport produces
the same bytes.

Status codes are chosen by **exception type**, never by service state:

- :class:`~repro.errors.ServiceOverloadError` → 429 + ``Retry-After``
  (counted in ``stats.rejected`` by the service itself);
- :class:`~repro.errors.ServiceClosedError` → 503 (draining/stopped —
  a lifecycle condition, not a client error);
- any other :class:`~repro.errors.ServiceError` → 400 (malformed
  payload — a bad request stays a 400 even while the service drains).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro import obs
from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from repro.obs import prom
from repro.obs.export import build_chrome_trace, run_report
from repro.obs.trace import TraceContext
from repro.service.jobs import JobRequest, JobState

_log = obs.get_logger("service.http")

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[A-Za-z0-9_-]+)$")
_RESULT_PATH = re.compile(r"^/jobs/(?P<id>[A-Za-z0-9_-]+)/result$")
_TRACE_PATH = re.compile(r"^/jobs/(?P<id>[A-Za-z0-9_-]+)/trace$")

JSON_CONTENT_TYPE = "application/json"


def to_json_bytes(payload: Any) -> bytes:
    """Canonical response encoding (sorted keys → byte-stable)."""
    return (
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    ).encode("utf-8")


@dataclass(frozen=True)
class Response:
    """One fully-rendered API response, transport-independent."""

    status: int
    body: bytes
    content_type: str = JSON_CONTENT_TYPE
    retry_after_s: Optional[float] = None


def _json(
    status: int, payload: Any, retry_after_s: Optional[float] = None
) -> Response:
    return Response(
        status=status,
        body=to_json_bytes(payload),
        retry_after_s=retry_after_s,
    )


def handle_request(
    service,
    method: str,
    target: str,
    headers: Mapping[str, str],
    body: Optional[bytes] = None,
) -> Response:
    """Route one request against the service; never raises.

    Args:
        service: the :class:`~repro.service.core.SynthesisService`
            (or sharded subclass) answering the API.
        method: HTTP method, upper-case.
        target: request target (path, optionally ``?query``).
        headers: request headers (any casing; trace propagation does a
            case-insensitive lookup).
        body: raw request body bytes (POST only).
    """
    try:
        if method == "POST":
            return _post(service, target, headers, body or b"")
        if method == "GET":
            return _get(service, target)
        if method == "DELETE":
            return _delete(service, target)
        return _json(405, {"error": f"unsupported method: {method}"})
    except Exception as exc:  # a handler bug must not kill the loop
        _log.error("unhandled error on %s %s: %s", method, target, exc)
        return _json(
            500,
            {"error": f"internal error: {type(exc).__name__}: {exc}"},
        )


def _decode_body(body: bytes) -> Any:
    if not body:
        raise ServiceError("empty request body")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"invalid JSON body: {exc}") from exc


def _post(
    service, target: str, headers: Mapping[str, str], body: bytes
) -> Response:
    if target.partition("?")[0].rstrip("/") != "/jobs":
        return _json(404, {"error": f"no such route: {target}"})
    try:
        request = JobRequest.from_json(_decode_body(body))
        trace = TraceContext.from_headers(headers)
        job, coalesced = service.submit(request, trace=trace)
    except ServiceOverloadError as exc:
        return _json(
            429,
            {"error": str(exc), "retry_after_s": exc.retry_after_s},
            retry_after_s=exc.retry_after_s,
        )
    except ServiceClosedError as exc:
        return _json(503, {"error": str(exc)})
    except ServiceError as exc:
        # A malformed payload is the client's fault whatever the
        # service lifecycle says: 400 even while draining.
        return _json(400, {"error": str(exc)})
    return _json(202, {"job": job.as_dict(), "coalesced": coalesced})


def _get(service, target: str) -> Response:
    path, _, query = target.partition("?")
    if path == "/healthz":
        return _json(200, service.health())
    if path == "/metricsz":
        if "format=prometheus" in query:
            text = prom.render_prometheus(
                obs.get_registry(),
                extra_gauges=service.slo_gauges(),
            )
            return Response(
                status=200,
                body=text.encode("utf-8"),
                content_type=prom.CONTENT_TYPE,
            )
        report = run_report()
        report["service"] = service.stats.as_dict()
        report["evaluator"] = service.evaluator_stats()
        report["slo"] = service.slo_gauges()
        return _json(200, report)
    match = _TRACE_PATH.match(path)
    if match:
        return _get_trace(service, match.group("id"))
    match = _RESULT_PATH.match(path)
    if match:
        return _get_result(service, match.group("id"))
    match = _JOB_PATH.match(path)
    if match:
        job = service.job(match.group("id"))
        if job is None:
            return _json(404, {"error": "unknown job"})
        return _json(200, job.as_dict())
    return _json(404, {"error": f"no such route: {path}"})


def _delete(service, target: str) -> Response:
    match = _JOB_PATH.match(target.partition("?")[0])
    if not match:
        return _json(404, {"error": f"no such route: {target}"})
    job = service.cancel(match.group("id"))
    if job is None:
        return _json(404, {"error": "unknown job"})
    return _json(200, job.as_dict())


def _get_trace(service, job_id: str) -> Response:
    """The job's merged Chrome trace (spans under its trace_id)."""
    job = service.job(job_id)
    if job is None:
        return _json(404, {"error": "unknown job"})
    if job.trace is None:
        return _json(
            404,
            {
                "error": (
                    "no trace recorded for this job (enable "
                    "observability or send X-Repro-Trace-Id)"
                )
            },
        )
    return _json(200, build_chrome_trace(trace_id=job.trace.trace_id))


def _get_result(service, job_id: str) -> Response:
    job = service.job(job_id)
    if job is None:
        return _json(404, {"error": "unknown job"})
    if job.state is JobState.DONE:
        # The flight record rides beside the result: the result
        # payload itself stays byte-identical with telemetry off.
        return _json(
            200,
            {
                "job_id": job.id,
                "result": job.result,
                "flight": job.flight,
            },
        )
    if job.state.finished:  # failed or cancelled
        return _json(
            409,
            {
                "job_id": job.id,
                "state": job.state.value,
                "error": job.error,
            },
        )
    return _json(202, job.as_dict())
