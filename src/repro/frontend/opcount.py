"""Operation counting over parsed stencil expressions.

Counts the floating-point work of the stencil body *as written* —
the quantity that determines DSP usage and the pipeline's adder tree —
as opposed to the algebraically-minimal tap form the extractor
produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Expr,
    Number,
    UnaryOp,
    VarRef,
)


@dataclass(frozen=True)
class OperationCounts:
    """Floating-point operation tallies of a kernel body."""

    adds: int = 0
    subs: int = 0
    muls: int = 0
    divs: int = 0
    array_reads: int = 0
    array_writes: int = 0

    @property
    def flops(self) -> int:
        """Total floating-point operations."""
        return self.adds + self.subs + self.muls + self.divs

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            adds=self.adds + other.adds,
            subs=self.subs + other.subs,
            muls=self.muls + other.muls,
            divs=self.divs + other.divs,
            array_reads=self.array_reads + other.array_reads,
            array_writes=self.array_writes + other.array_writes,
        )


def _count_expr(expr: Expr) -> OperationCounts:
    if isinstance(expr, Number) or isinstance(expr, VarRef):
        return OperationCounts()
    if isinstance(expr, ArrayRef):
        return OperationCounts(array_reads=1)
    if isinstance(expr, UnaryOp):
        return _count_expr(expr.operand)
    if isinstance(expr, Call):
        counts = OperationCounts()
        for arg in expr.args:
            counts = counts + _count_expr(arg)
        return counts
    if isinstance(expr, BinOp):
        counts = _count_expr(expr.left) + _count_expr(expr.right)
        extra = {
            "+": OperationCounts(adds=1),
            "-": OperationCounts(subs=1),
            "*": OperationCounts(muls=1),
            "/": OperationCounts(divs=1),
        }[expr.op]
        return counts + extra
    raise TypeError(f"Unknown expression node {type(expr).__name__}")


def count_operations(statements: Sequence[Assign]) -> OperationCounts:
    """Tally operations across a kernel body's assignments."""
    total = OperationCounts()
    for statement in statements:
        total = total + _count_expr(statement.value)
        if isinstance(statement.target, ArrayRef):
            total = total + OperationCounts(array_writes=1)
    return total
