"""Recursive-descent parser for the OpenCL-C stencil subset.

Accepts either a full ``__kernel void name(...) { body }`` definition
(the body between the outermost braces is parsed) or a bare statement
list.  Supported statements:

- declarations with optional initializer
  (``int i = get_global_id(0);``, ``float c = 0.2f;``);
- assignments to scalars or arrays
  (``B[i][j] = 0.2f * (A[i][j] + ...);``).

Expressions cover the arithmetic stencil bodies use: ``+ - * /``,
unary minus, parentheses, numeric literals (with float suffixes),
multi-subscript array references, and calls.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import ParseError
from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Expr,
    Number,
    UnaryOp,
    VarRef,
)
from repro.frontend.lexer import Token, TokenKind, tokenize

_TYPE_KEYWORDS = {
    "int",
    "uint",
    "long",
    "ulong",
    "short",
    "ushort",
    "char",
    "uchar",
    "size_t",
    "float",
    "double",
    "half",
}

_QUALIFIERS = {"const", "__local", "local", "__private", "private", "unsigned"}


class Parser:
    """Token-stream parser producing :class:`Assign` statements."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        """Look ahead without consuming."""
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        """Consume a token of the given kind or fail."""
        token = self.peek()
        if token.kind is not kind:
            raise ParseError(
                f"Expected {kind.value!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def at(self, kind: TokenKind) -> bool:
        """True when the current token has the given kind."""
        return self.peek().kind is kind

    # -- statements -------------------------------------------------------------

    def parse_statements(self) -> List[Assign]:
        """Parse statements until EOF; returns assignments in order."""
        statements: List[Assign] = []
        while not self.at(TokenKind.EOF):
            statement = self.parse_statement()
            if statement is not None:
                statements.append(statement)
        return statements

    def parse_statement(self) -> Optional[Assign]:
        """One statement; ``None`` for declarations without initializer."""
        declared_type = self._parse_declaration_prefix()
        target = self._parse_lvalue()
        if self.at(TokenKind.SEMICOLON):
            self.advance()
            return None
        self.expect(TokenKind.ASSIGN)
        value = self.parse_expression()
        self.expect(TokenKind.SEMICOLON)
        return Assign(
            target=target, value=value, declared_type=declared_type
        )

    def _parse_declaration_prefix(self) -> str:
        parts: List[str] = []
        while (
            self.at(TokenKind.IDENT)
            and self.peek().text in _QUALIFIERS | _TYPE_KEYWORDS
            and self.peek(1).kind is TokenKind.IDENT
        ):
            parts.append(self.advance().text)
        return " ".join(parts)

    def _parse_lvalue(self) -> Union[ArrayRef, VarRef]:
        name = self.expect(TokenKind.IDENT).text
        if self.at(TokenKind.LBRACKET):
            return self._parse_subscripts(name)
        return VarRef(name)

    def _parse_subscripts(self, name: str) -> ArrayRef:
        subscripts: List[Expr] = []
        while self.at(TokenKind.LBRACKET):
            self.advance()
            subscripts.append(self.parse_expression())
            self.expect(TokenKind.RBRACKET)
        return ArrayRef(name, tuple(subscripts))

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> Expr:
        """Additive-precedence entry point."""
        left = self.parse_term()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance().text
            right = self.parse_term()
            left = BinOp(op, left, right)
        return left

    def parse_term(self) -> Expr:
        """Multiplicative level."""
        left = self.parse_unary()
        while self.peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self.advance().text
            right = self.parse_unary()
            left = BinOp(op, left, right)
        return left

    def parse_unary(self) -> Expr:
        """Unary plus/minus."""
        if self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance().text
            return UnaryOp(op, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        """Literals, parenthesized expressions, refs, and calls."""
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return Number(float(token.text))
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expression()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            name = self.advance().text
            if self.at(TokenKind.LPAREN):
                return self._parse_call(name)
            if self.at(TokenKind.LBRACKET):
                return self._parse_subscripts(name)
            return VarRef(name)
        raise ParseError(
            f"Unexpected token {token.text!r} in expression",
            token.line,
            token.column,
        )

    def _parse_call(self, name: str) -> Call:
        self.expect(TokenKind.LPAREN)
        args: List[Expr] = []
        if not self.at(TokenKind.RPAREN):
            args.append(self.parse_expression())
            while self.at(TokenKind.COMMA):
                self.advance()
                args.append(self.parse_expression())
        self.expect(TokenKind.RPAREN)
        return Call(name, tuple(args))


def _extract_body(source: str) -> str:
    """Return the outermost brace-enclosed body, or the source itself."""
    start = source.find("{")
    if start < 0:
        return source
    depth = 0
    for i in range(start, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                return source[start + 1 : i]
    raise ParseError("Unbalanced braces in kernel source")


def parse_kernel_body(source: str) -> List[Assign]:
    """Parse a kernel definition or bare body into assignments."""
    body = _extract_body(source)
    return Parser(tokenize(body)).parse_statements()
