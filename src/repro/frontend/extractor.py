"""Feature extraction: from parsed kernel source to a stencil pattern.

Implements the paper's *feature extractor* (Section 5.1): given the
original stencil operation code, determine the application-specific
configuration — stencil shape (tap offsets and coefficients),
dimension, and operation counts.

The extractor works by *linearizing* each assignment's right-hand side
into an affine combination of array reads at constant offsets.  Scalar
temporaries are inlined; multi-statement bodies (e.g. FDTD's three
sweeps) become stages and are composed symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ExtractionError
from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Expr,
    Number,
    UnaryOp,
    VarRef,
)
from repro.frontend.opcount import OperationCounts, count_operations
from repro.frontend.parser import parse_kernel_body
from repro.stencil.pattern import (
    FieldUpdate,
    Stage,
    StencilPattern,
    Tap,
    compose_stages,
)

_log = obs.get_logger("frontend")


class _LinearForm:
    """Affine combination of array reads: ``Σ coeff·arr[cell+off] + c``."""

    def __init__(self) -> None:
        self.terms: Dict[Tuple[str, Tuple[int, ...]], float] = {}
        self.constant: float = 0.0

    @classmethod
    def const(cls, value: float) -> "_LinearForm":
        form = cls()
        form.constant = value
        return form

    @classmethod
    def read(cls, array: str, offsets: Tuple[int, ...]) -> "_LinearForm":
        form = cls()
        form.terms[(array, offsets)] = 1.0
        return form

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def add(self, other: "_LinearForm", sign: float = 1.0) -> "_LinearForm":
        result = _LinearForm()
        result.terms = dict(self.terms)
        result.constant = self.constant + sign * other.constant
        for key, coeff in other.terms.items():
            result.terms[key] = result.terms.get(key, 0.0) + sign * coeff
        return result

    def scale(self, factor: float) -> "_LinearForm":
        result = _LinearForm()
        result.constant = self.constant * factor
        result.terms = {k: c * factor for k, c in self.terms.items()}
        return result


@dataclass(frozen=True)
class KernelFeatures:
    """Everything the optimizer needs to know about a kernel source.

    Attributes:
        pattern: the recovered (composed) stencil pattern.
        ndim: grid dimensionality.
        index_vars: index variable names in dimension order.
        counts: as-written floating-point operation counts.
        dtype: element type inferred from declarations.
    """

    pattern: StencilPattern
    ndim: int
    index_vars: Tuple[str, ...]
    counts: OperationCounts
    dtype: np.dtype


class FeatureExtractor:
    """Recovers stencil features from OpenCL-C kernel source."""

    def __init__(
        self,
        field_map: Optional[Mapping[str, str]] = None,
        aux: Sequence[str] = (),
    ):
        """
        Args:
            field_map: maps a *written* array name to the state field it
                updates (for ping-pong kernels writing ``B`` from ``A``,
                pass ``{"B": "A"}``).  Written arrays that are also read
                map to themselves automatically.
            aux: names of read-only auxiliary inputs (e.g. HotSpot's
                ``power``); everything else read must be state.
        """
        self.field_map = dict(field_map or {})
        self.aux = tuple(aux)

    # -- public API -----------------------------------------------------------

    def extract(self, source: str, name: str = "kernel") -> KernelFeatures:
        """Extract features from kernel source.

        Args:
            source: a full kernel definition or bare body.
            name: name given to the resulting pattern.
        """
        with obs.span("frontend.extract", kernel=name) as extract_span:
            features = self._extract(source, name, extract_span)
        if obs.enabled():
            obs.inc("frontend.kernels_extracted")
            _log.debug(
                "extracted %r: %d-D, %d taps/cell",
                name,
                features.ndim,
                features.pattern.points_per_cell(),
            )
        return features

    def _extract(
        self, source: str, name: str, extract_span
    ) -> KernelFeatures:
        with obs.span("frontend.parse", kernel=name):
            statements = parse_kernel_body(source)
        index_vars = self._find_index_vars(statements)
        scalar_env: Dict[str, Expr] = {}
        array_assigns: List[Assign] = []
        dtype = np.dtype(np.float32)
        for statement in statements:
            if "double" in statement.declared_type:
                dtype = np.dtype(np.float64)
            if isinstance(statement.target, VarRef):
                if statement.target.name in index_vars:
                    continue
                scalar_env[statement.target.name] = statement.value
            else:
                array_assigns.append(statement)
        if not array_assigns:
            raise ExtractionError(
                "Kernel body contains no array update statement"
            )
        if not index_vars:
            index_vars = self._infer_index_vars(array_assigns[0])
        ndim = len(index_vars)
        dims = {v: d for d, v in enumerate(index_vars)}

        stages, fields = self._build_stages(
            array_assigns, dims, scalar_env, ndim
        )
        pattern = compose_stages(name, ndim, fields, stages, aux=self.aux)
        extract_span.set(ndim=ndim, stages=len(stages))
        return KernelFeatures(
            pattern=pattern,
            ndim=ndim,
            index_vars=tuple(index_vars),
            counts=count_operations(array_assigns),
            dtype=dtype,
        )

    # -- index variables ---------------------------------------------------------

    def _find_index_vars(
        self, statements: Sequence[Assign]
    ) -> List[str]:
        """Index variables from ``get_global_id(d)`` declarations."""
        by_dim: Dict[int, str] = {}
        for statement in statements:
            if not isinstance(statement.target, VarRef):
                continue
            value = statement.value
            if (
                isinstance(value, Call)
                and value.name == "get_global_id"
                and len(value.args) == 1
                and isinstance(value.args[0], Number)
            ):
                by_dim[int(value.args[0].value)] = statement.target.name
        if not by_dim:
            return []
        if sorted(by_dim) != list(range(len(by_dim))):
            raise ExtractionError(
                f"Non-contiguous get_global_id dimensions: {sorted(by_dim)}"
            )
        return [by_dim[d] for d in sorted(by_dim)]

    def _infer_index_vars(self, assign: Assign) -> List[str]:
        """Fallback: subscript variables of the first target, in order."""
        target = assign.target
        assert isinstance(target, ArrayRef)
        names: List[str] = []
        for subscript in target.subscripts:
            found = _subscript_variables(subscript)
            if len(found) != 1:
                raise ExtractionError(
                    f"Cannot infer index variable from subscript of "
                    f"{target.name!r}"
                )
            names.append(found[0])
        return names

    # -- stage construction ----------------------------------------------------------

    def _build_stages(
        self,
        assigns: Sequence[Assign],
        dims: Dict[str, int],
        scalar_env: Dict[str, Expr],
        ndim: int,
    ) -> Tuple[List[Stage], List[str]]:
        read_arrays: List[str] = []
        forms: List[Tuple[str, _LinearForm]] = []
        for assign in assigns:
            target = assign.target
            assert isinstance(target, ArrayRef)
            offsets = self._resolve_offsets(target, dims, ndim)
            if any(offsets):
                raise ExtractionError(
                    f"Update target {target.name!r} must be written at "
                    f"offset zero, got {offsets}"
                )
            form = self._linearize(assign.value, dims, scalar_env, ndim, 0)
            for array, _off in form.terms:
                if array not in read_arrays:
                    read_arrays.append(array)
            forms.append((target.name, form))

        written = [name for name, _ in forms]
        renames = self._output_renames(written, read_arrays)
        fields: List[str] = []
        for name, _form in forms:
            field = renames[name]
            if field not in fields:
                fields.append(field)
        for array in read_arrays:
            if array not in fields and array not in self.aux:
                fields.append(array)

        stages: List[Stage] = []
        for name, form in forms:
            taps = tuple(
                Tap(renames.get(array, array), offsets, coeff)
                for (array, offsets), coeff in form.terms.items()
                if coeff != 0.0
            )
            stages.append(
                Stage(
                    updates={
                        renames[name]: FieldUpdate(
                            taps=taps, constant=form.constant
                        )
                    }
                )
            )
        return stages, fields

    def _output_renames(
        self, written: Sequence[str], read_arrays: Sequence[str]
    ) -> Dict[str, str]:
        renames: Dict[str, str] = {}
        distinct_written = list(dict.fromkeys(written))
        for name in written:
            if name in self.field_map:
                renames[name] = self.field_map[name]
            elif name in read_arrays:
                renames[name] = name
            elif len(distinct_written) == 1:
                # Ping-pong heuristic: a single output array written
                # from a single state input is that input's new value.
                state_reads = [
                    a for a in read_arrays if a not in self.aux
                ]
                if len(state_reads) == 1:
                    renames[name] = state_reads[0]
                else:
                    raise ExtractionError(
                        f"Cannot pair output array {name!r} with a state "
                        f"field; pass field_map (reads: {state_reads})"
                    )
            else:
                raise ExtractionError(
                    f"Output array {name!r} is never read and the kernel "
                    f"writes several arrays; pass field_map to name its "
                    f"state field"
                )
        return renames

    # -- linearization -----------------------------------------------------------------

    def _linearize(
        self,
        expr: Expr,
        dims: Dict[str, int],
        scalar_env: Dict[str, Expr],
        ndim: int,
        depth: int,
    ) -> _LinearForm:
        if depth > 64:
            raise ExtractionError(
                "Scalar substitution too deep (cyclic definition?)"
            )
        if isinstance(expr, Number):
            return _LinearForm.const(expr.value)
        if isinstance(expr, VarRef):
            if expr.name in scalar_env:
                return self._linearize(
                    scalar_env[expr.name], dims, scalar_env, ndim, depth + 1
                )
            if expr.name in dims:
                raise ExtractionError(
                    f"Index variable {expr.name!r} used outside a subscript"
                )
            raise ExtractionError(
                f"Unknown scalar {expr.name!r}: stencil coefficients must "
                f"be literal or locally defined"
            )
        if isinstance(expr, ArrayRef):
            offsets = self._resolve_offsets(expr, dims, ndim)
            return _LinearForm.read(expr.name, offsets)
        if isinstance(expr, UnaryOp):
            inner = self._linearize(
                expr.operand, dims, scalar_env, ndim, depth
            )
            return inner.scale(-1.0) if expr.op == "-" else inner
        if isinstance(expr, BinOp):
            left = self._linearize(expr.left, dims, scalar_env, ndim, depth)
            right = self._linearize(
                expr.right, dims, scalar_env, ndim, depth
            )
            if expr.op == "+":
                return left.add(right)
            if expr.op == "-":
                return left.add(right, sign=-1.0)
            if expr.op == "*":
                if right.is_constant:
                    return left.scale(right.constant)
                if left.is_constant:
                    return right.scale(left.constant)
                raise ExtractionError(
                    "Non-linear stencil: product of two array reads"
                )
            if expr.op == "/":
                if not right.is_constant:
                    raise ExtractionError(
                        "Non-linear stencil: division by an array read"
                    )
                if right.constant == 0.0:
                    raise ExtractionError("Division by zero coefficient")
                return left.scale(1.0 / right.constant)
        if isinstance(expr, Call):
            raise ExtractionError(
                f"Unsupported call {expr.name!r} in stencil expression"
            )
        raise ExtractionError(
            f"Unsupported expression node {type(expr).__name__}"
        )

    def _resolve_offsets(
        self, ref: ArrayRef, dims: Dict[str, int], ndim: int
    ) -> Tuple[int, ...]:
        if len(ref.subscripts) != ndim:
            raise ExtractionError(
                f"Array {ref.name!r} subscripted with "
                f"{len(ref.subscripts)} indices; kernel is {ndim}-D"
            )
        offsets = [0] * ndim
        for position, subscript in enumerate(ref.subscripts):
            var, shift = _affine_subscript(subscript)
            dim = dims.get(var)
            if dim is None:
                raise ExtractionError(
                    f"Subscript of {ref.name!r} uses unknown index "
                    f"variable {var!r}"
                )
            if dim != position:
                raise ExtractionError(
                    f"Array {ref.name!r} subscripts index variables out "
                    f"of dimension order"
                )
            offsets[dim] = shift
        return tuple(offsets)


def _subscript_variables(expr: Expr) -> List[str]:
    if isinstance(expr, VarRef):
        return [expr.name]
    if isinstance(expr, UnaryOp):
        return _subscript_variables(expr.operand)
    if isinstance(expr, BinOp):
        return _subscript_variables(expr.left) + _subscript_variables(
            expr.right
        )
    return []


def _affine_subscript(expr: Expr) -> Tuple[str, int]:
    """Resolve a subscript to ``(index variable, integer shift)``."""
    if isinstance(expr, VarRef):
        return expr.name, 0
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        sign = 1 if expr.op == "+" else -1
        if isinstance(expr.left, VarRef) and isinstance(expr.right, Number):
            return expr.left.name, sign * int(expr.right.value)
        if (
            expr.op == "+"
            and isinstance(expr.left, Number)
            and isinstance(expr.right, VarRef)
        ):
            return expr.right.name, int(expr.left.value)
    raise ExtractionError(
        "Subscripts must have the form 'i', 'i + c', or 'i - c'"
    )


def extract_features(
    source: str,
    name: str = "kernel",
    field_map: Optional[Mapping[str, str]] = None,
    aux: Sequence[str] = (),
) -> KernelFeatures:
    """Convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor(field_map=field_map, aux=aux).extract(
        source, name
    )


def extract_pattern(
    source: str,
    name: str = "kernel",
    field_map: Optional[Mapping[str, str]] = None,
    aux: Sequence[str] = (),
) -> StencilPattern:
    """Extract just the composed stencil pattern from kernel source."""
    return extract_features(source, name, field_map, aux).pattern
