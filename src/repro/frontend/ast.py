"""Expression AST for the OpenCL-C stencil subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Number(Expr):
    """A numeric literal."""

    value: float


@dataclass(frozen=True)
class VarRef(Expr):
    """A bare variable reference (index variable or scalar parameter)."""

    name: str


@dataclass(frozen=True)
class ArrayRef(Expr):
    """An array access ``name[idx0][idx1]...`` or ``name[linear]``.

    Each subscript is kept as an expression; the extractor resolves it
    into an (index variable, constant shift) pair.
    """

    name: str
    subscripts: Tuple[Expr, ...]


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary ``-`` or ``+``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: ``+ - * /``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A function call, e.g. ``get_global_id(0)``."""

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Assign:
    """An assignment statement ``target = value;``.

    ``target`` is an :class:`ArrayRef` for stencil updates or a
    :class:`VarRef` for scalar temporaries (which the extractor
    inlines).  ``declared_type`` records the C type when the statement
    was a declaration with initializer.
    """

    target: Union[ArrayRef, VarRef]
    value: Expr
    declared_type: str = ""
