"""OpenCL-C subset frontend: the paper's feature extractor.

Parses the body of a stencil kernel written in (a practical subset of)
OpenCL C and recovers the application-specific configuration the
optimization framework needs: stencil shape (tap offsets and
coefficients), dimensionality, operation counts, and data type —
Section 5.1's "feature extractor".
"""

from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    Number,
    UnaryOp,
    VarRef,
)
from repro.frontend.parser import Parser, parse_kernel_body
from repro.frontend.extractor import (
    FeatureExtractor,
    KernelFeatures,
    extract_features,
    extract_pattern,
)
from repro.frontend.opcount import OperationCounts, count_operations

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "ArrayRef",
    "Assign",
    "BinOp",
    "Expr",
    "Number",
    "UnaryOp",
    "VarRef",
    "Parser",
    "parse_kernel_body",
    "FeatureExtractor",
    "KernelFeatures",
    "extract_features",
    "extract_pattern",
    "OperationCounts",
    "count_operations",
]
