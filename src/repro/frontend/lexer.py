"""Tokenizer for the OpenCL-C stencil subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ParseError


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    NUMBER = "number"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    ASSIGN = "="
    SEMICOLON = ";"
    COMMA = ","
    EOF = "eof"


_SINGLE = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "=": TokenKind.ASSIGN,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.name}, {self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenize stencil-kernel source.

    Comments (``//`` and ``/* */``) are skipped.  Numeric literals may
    carry C float suffixes (``f``/``F``), which are absorbed into the
    number token.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise ParseError("Unterminated block comment", line, column)
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            i = end + 2
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            if i < n and source[i] in "fF":
                i += 1
            tokens.append(Token(TokenKind.NUMBER, text, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            tokens.append(
                Token(TokenKind.IDENT, source[start:i], line, column)
            )
            column += i - start
            continue
        kind = _SINGLE.get(ch)
        if kind is None:
            raise ParseError(f"Unexpected character {ch!r}", line, column)
        tokens.append(Token(kind, ch, line, column))
        i += 1
        column += 1
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
