"""Hierarchical wall-time spans.

``with span("dse.explore", candidates=120):`` times a region of work.
Spans nest through a per-thread stack, so a ``model.predict`` span
opened inside a ``dse.explore`` span records the explore span's
sequence id as its parent — across threads each worker has its own
stack, which is exactly the Chrome-trace thread model.

Every finished span

- lands in the process recorder (:mod:`repro.obs.core`), and
- feeds its duration into the histogram named after the span
  (``registry.histogram("model.predict")``), so span names double as
  latency metrics with percentile summaries for free.

When observability is disabled, :func:`span` returns a shared no-op
context manager: no allocation, no clock read, no lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs import core, trace
from repro.obs.metrics import default_registry


@dataclass
class SpanRecord:
    """One finished span.

    Times are ``perf_counter`` seconds relative to the observability
    epoch (set when recording was enabled), so a whole run's spans
    share one timebase.  ``trace_id`` groups spans belonging to one
    request (see :mod:`repro.obs.trace`); it is ``None`` for spans
    opened outside any request.
    """

    name: str
    start_s: float
    end_s: float
    seq: int
    parent_seq: Optional[int]
    thread: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "seq": self.seq,
            "parent_seq": self.parent_seq,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
        }


class _ThreadState(threading.local):
    def __init__(self):
        self.stack = []


_state = _ThreadState()


class Span:
    """Live span handle; use via ``with repro.obs.span(...):``."""

    __slots__ = ("name", "attrs", "seq", "_start", "_parent", "_trace_id")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.seq = core.next_seq()
        self._start = 0.0
        self._parent: Optional[int] = None
        self._trace_id: Optional[str] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span mid-flight."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _state.stack
        self._parent = stack[-1] if stack else None
        ctx = trace.current()
        if ctx is not None:
            self._trace_id = ctx.trace_id
            if self._parent is None:
                # Root span of this thread's slice of the request:
                # parent it where the request forked (another thread's
                # span), so the merged trace stays one tree.
                self._parent = ctx.parent_seq
        stack.append(self.seq)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        stack = _state.stack
        if stack and stack[-1] == self.seq:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        epoch = core.epoch()
        if core.capture_spans():
            core.recorder.add_span(
                SpanRecord(
                    name=self.name,
                    start_s=self._start - epoch,
                    end_s=end - epoch,
                    seq=self.seq,
                    parent_seq=self._parent,
                    thread=threading.current_thread().name,
                    attrs=self.attrs,
                    trace_id=self._trace_id,
                )
            )
        default_registry.histogram(self.name).observe(end - self._start)
        return False


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any):
    """Open a span context manager (no-op when observability is off)."""
    if not core.enabled():
        return NOOP_SPAN
    return Span(name, attrs)


def current_span_seq() -> Optional[int]:
    """Sequence id of the innermost open span on this thread."""
    stack = _state.stack
    return stack[-1] if stack else None
