"""The metrics registry: counters, gauges, and histograms.

Metric objects are cheap, lock-guarded accumulators held in a
:class:`MetricsRegistry` keyed by dotted name (``dse.cache_hits``,
``model.predict``).  The module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`) write to the default registry and
no-op when observability is disabled, so instrumented code can call
them unconditionally.

Histograms keep exact ``count``/``sum``/``min``/``max`` over every
observation but store at most ``sample_limit`` raw values for the
percentile summary.  Past the limit the retained values form a
uniform reservoir (Algorithm R) over the *whole* stream — each
observation, early or late, survives with probability
``sample_limit / count`` — so a long-running service's percentiles
keep tracking current behaviour instead of freezing on the first
65k observations.  The reservoir's randomness is a per-histogram
``random.Random`` seeded from the metric name: deterministic across
runs and untangled from the global ``random`` state.  The summary
reports ``sampled: true`` whenever it is an approximation.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, List, Optional, Sequence, Union

from repro.obs import core

Number = Union[int, float]


class Counter:
    """Monotonic counter."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"Counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted values.

    ``q`` is in [0, 100].  Matches ``numpy.percentile``'s default
    (``linear``) method, without requiring numpy.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return float(
        sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac
    )


class Histogram:
    """Streaming distribution with a percentile summary."""

    PERCENTILES = (50.0, 90.0, 99.0)

    def __init__(self, name: str, sample_limit: int = 65_536):
        self.name = name
        self.sample_limit = sample_limit
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        # Reservoir randomness seeded from the metric name: the same
        # observation stream always yields the same percentiles, and
        # nothing here touches the global `random` state.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < self.sample_limit:
                self._samples.append(value)
            else:
                # Algorithm R: keep a uniform sample of the stream so
                # far, so late observations displace early ones with
                # the probability that keeps the reservoir unbiased.
                slot = self._rng.randrange(self._count)
                if slot < self.sample_limit:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(self) -> Dict[str, Number]:
        """Count, sum, min/max/mean, and p50/p90/p99."""
        with self._lock:
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
            sample = sorted(self._samples)
            sampled = count > len(self._samples)
        if count == 0:
            return {"count": 0, "sum": 0.0}
        out: Dict[str, Number] = {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
        }
        # Interpolation rounding can de-order near-equal percentiles
        # by one ulp; a running max keeps p50 <= p90 <= p99.
        floor = float("-inf")
        for q in self.PERCENTILES:
            floor = max(floor, percentile(sample, q))
            out[f"p{q:g}"] = floor
        if sampled:
            out["sampled"] = True
        return out


class MetricsRegistry:
    """Name-keyed store of metrics, safe for concurrent use."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def report(self) -> Dict[str, Dict]:
        """Plain-dict snapshot of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The registry the module-level helpers (and the run report) use.
default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The default process-wide registry."""
    return default_registry


def inc(name: str, amount: Number = 1) -> None:
    """Increment counter ``name`` (no-op when observability is off).

    The counter is created even for ``amount=0``, so rates derived
    from it are reported as 0.0 rather than missing.
    """
    if core.enabled():
        default_registry.counter(name).inc(amount)


def set_gauge(name: str, value: Number) -> None:
    """Set gauge ``name`` (no-op when observability is off)."""
    if core.enabled():
        default_registry.gauge(name).set(value)


def observe(name: str, value: Number) -> None:
    """Record ``value`` in histogram ``name`` (no-op when off)."""
    if core.enabled():
        default_registry.histogram(name).observe(value)
