"""``repro obs top`` — a refreshing terminal view over service telemetry.

Two data sources, one dashboard:

- a **telemetry journal** (``telemetry.jsonl`` written by
  :class:`~repro.obs.record.TelemetryJournal`) — works on a live file
  or post-mortem after a crash/drain;
- a **live service** — ``http://host:port`` is polled at
  ``GET /metricsz`` for the JSON run report (+ service stats and SLO
  gauges).

Each refresh renders one plain-text frame: headline service counters,
SLO gauges, the hottest latency histograms, and the most recent job
flight records.  Rendering is pure (``render_frame`` takes a plain
dict and returns a string) so tests don't need a terminal or a server.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.obs.record import latest_snapshot, read_telemetry, recent_flights

#: ANSI "clear screen + home" prefix used between frames on a TTY.
CLEAR = "\x1b[2J\x1b[H"

#: Histograms worth front-page billing, in display order.
_HEADLINE_HISTOGRAMS = (
    "service.job_wall_s",
    "service.queue_wait_s",
    "service.synthesize",
    "search.tier0",
    "search.tier1",
    "store.lookup",
    "model.predict",
)


def load_from_journal(path, flights: int = 8) -> Dict[str, Any]:
    """Normalize the newest journal snapshot + flights into frame data."""
    records = read_telemetry(path)
    snapshot = latest_snapshot(records)
    metrics = (snapshot or {}).get("metrics", {})
    return {
        "source": f"journal {path}",
        "ts": (snapshot or {}).get("ts"),
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
        "service": None,
        "slo": None,
        "flights": recent_flights(records, limit=flights),
    }


def load_from_url(url: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    """Normalize a live ``GET /metricsz`` report into frame data."""
    request = urllib.request.Request(url.rstrip("/") + "/metricsz")
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        report = json.loads(response.read().decode("utf-8"))
    metrics = report.get("metrics", {})
    return {
        "source": f"live {url}",
        "ts": time.time(),
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
        "histograms": metrics.get("histograms", {}),
        "service": report.get("service"),
        "slo": report.get("slo"),
        "flights": [],
    }


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_frame(data: Dict[str, Any], width: int = 78) -> str:
    """One dashboard frame as plain text (no ANSI)."""
    lines: List[str] = []
    rule = "-" * width
    stamp = (
        time.strftime("%H:%M:%S", time.localtime(data["ts"]))
        if data.get("ts")
        else "?"
    )
    lines.append(f"repro obs top | {data['source']} | as of {stamp}")
    lines.append(rule)

    service = data.get("service")
    counters = data.get("counters", {})
    if service:
        lines.append(
            "jobs: "
            f"accepted={service.get('accepted', 0)} "
            f"completed={service.get('completed', 0)} "
            f"failed={service.get('failed', 0)} "
            f"cancelled={service.get('cancelled', 0)} "
            f"deduped={service.get('deduped', 0)} "
            f"rejected={service.get('rejected', 0)}"
        )
    else:
        lines.append(
            "jobs: "
            f"accepted={counters.get('service.accepted', 0):g} "
            f"completed={counters.get('service.completed', 0):g} "
            f"failed={counters.get('service.failed', 0):g} "
            f"cancelled={counters.get('service.cancelled', 0):g} "
            f"deduped={counters.get('service.dedup', 0):g} "
            f"rejected={counters.get('service.rejected', 0):g}"
        )
    gauges = data.get("gauges", {})
    lines.append(
        "load: "
        f"queue_depth={gauges.get('service.queue_depth', 0):g} "
        f"running={gauges.get('service.running', 0):g} "
        f"store_entries={gauges.get('store.entries', 0):g}"
    )

    slo = data.get("slo")
    if slo:
        within = slo.get("service.slo.p99_within_target", 1.0)
        lines.append(
            "slo:  "
            f"queue_saturation={slo.get('service.slo.queue_saturation', 0):.1%} "
            f"reject_rate={slo.get('service.slo.reject_rate', 0):.1%} "
            f"p99={_fmt_s(slo.get('service.slo.p99_job_wall_s'))} "
            f"target={_fmt_s(slo.get('service.slo.p99_target_s'))} "
            f"[{'OK' if within else 'BREACH'}]"
        )

    histograms = data.get("histograms", {})
    shown = [
        name
        for name in _HEADLINE_HISTOGRAMS
        if histograms.get(name, {}).get("count")
    ]
    if shown:
        lines.append(rule)
        lines.append(
            f"{'latency':<24}{'count':>8}{'mean':>10}"
            f"{'p50':>10}{'p90':>10}{'p99':>10}"
        )
        for name in shown:
            h = histograms[name]
            lines.append(
                f"{name:<24}{h['count']:>8}"
                f"{_fmt_s(h.get('mean')):>10}"
                f"{_fmt_s(h.get('p50')):>10}"
                f"{_fmt_s(h.get('p90')):>10}"
                f"{_fmt_s(h.get('p99')):>10}"
            )

    flights = data.get("flights", [])
    if flights:
        lines.append(rule)
        lines.append(
            f"{'job':<12}{'state':<11}{'queue':>9}{'run':>9}"
            f"{'cpu':>9}{'evals':>7}{'cache':>7}{'store':>7}"
        )
        for flight in flights:
            lines.append(
                f"{flight.get('job_id', '?'):<12}"
                f"{flight.get('state', '?'):<11}"
                f"{_fmt_s(flight.get('queue_wait_s')):>9}"
                f"{_fmt_s(flight.get('run_s')):>9}"
                f"{_fmt_s(flight.get('cpu_s')):>9}"
                f"{flight.get('evaluations', 0):>7}"
                f"{flight.get('cache_hits', 0):>7}"
                f"{flight.get('store_hits', 0):>7}"
            )
    lines.append(rule)
    return "\n".join(lines) + "\n"


def run_top(
    journal=None,
    url: Optional[str] = None,
    interval_s: float = 2.0,
    frames: Optional[int] = None,
    stream=None,
    clear: Optional[bool] = None,
) -> int:
    """Drive the dashboard loop; returns a process exit code.

    Exactly one of ``journal`` / ``url`` must be given.  ``frames``
    bounds the number of refreshes (``None`` = until interrupted);
    ``clear`` controls the ANSI screen wipe (default: only on a TTY).
    """
    if (journal is None) == (url is None):
        raise ValueError("pass exactly one of journal= or url=")
    out = stream if stream is not None else sys.stdout
    if clear is None:
        clear = bool(getattr(out, "isatty", lambda: False)())
    shown = 0
    while True:
        try:
            data = (
                load_from_journal(journal)
                if journal is not None
                else load_from_url(url)
            )
        except (urllib.error.URLError, OSError) as exc:
            out.write(f"repro obs top: source unavailable: {exc}\n")
            out.flush()
            return 1
        if clear:
            out.write(CLEAR)
        out.write(render_frame(data))
        out.flush()
        shown += 1
        if frames is not None and shown >= frames:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
