"""Request-scoped trace contexts: one trace id across threads and hops.

A :class:`TraceContext` names one logical request — a ``trace_id``
minted where the request originates (the service client, an in-process
``submit``), an optional parent span sequence id, and a small string
``baggage`` map.  The context travels

- **over HTTP** as ``X-Repro-Trace-*`` headers
  (:meth:`TraceContext.to_headers` / :meth:`TraceContext.from_headers`),
- **across threads** by re-activation: :func:`activate` installs a
  context in the current thread's slot, and every span opened while it
  is active records its ``trace_id`` (and, for the thread's root span,
  parents to ``parent_seq``), so work fanned out over a worker pool
  still folds into one trace.

Everything here is allocation-free on the disabled path: no context is
ever minted or activated unless a caller explicitly does so, and
:func:`current` is a single ``threading.local`` attribute read.  The
hot evaluator path never touches this module when observability is off
(see ``tests/obs/test_trace.py::TestZeroCost``).
"""

from __future__ import annotations

import re
import threading
import urllib.parse
import uuid
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

#: HTTP header carrying the 32-hex-char trace id.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
#: HTTP header carrying the originating span's sequence id (optional).
PARENT_SPAN_HEADER = "X-Repro-Parent-Span"
#: HTTP header carrying url-encoded ``key=value`` baggage pairs.
BAGGAGE_HEADER = "X-Repro-Baggage"

_TRACE_ID = re.compile(r"^[0-9a-f]{32}$")


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: trace id, parent span, baggage.

    Immutable; derive variants with :meth:`with_parent` /
    :meth:`with_baggage`.  ``parent_seq`` is meaningful only within the
    process whose span sequence numbers it refers to — a context
    arriving over HTTP drops it (the client's spans are not in this
    process's recorder).
    """

    trace_id: str
    parent_seq: Optional[int] = None
    baggage: Tuple[Tuple[str, str], ...] = field(default=())

    @classmethod
    def mint(cls, **baggage: str) -> "TraceContext":
        """A fresh context with a random 128-bit trace id."""
        return cls(
            trace_id=uuid.uuid4().hex,
            baggage=tuple(sorted(baggage.items())),
        )

    def with_parent(self, parent_seq: Optional[int]) -> "TraceContext":
        """The same trace, parented under span ``parent_seq``."""
        return replace(self, parent_seq=parent_seq)

    def baggage_dict(self) -> Dict[str, str]:
        return dict(self.baggage)

    # -- HTTP propagation -------------------------------------------------------

    def to_headers(self) -> Dict[str, str]:
        """Encode the context as HTTP request headers."""
        headers = {TRACE_ID_HEADER: self.trace_id}
        if self.parent_seq is not None:
            headers[PARENT_SPAN_HEADER] = str(self.parent_seq)
        if self.baggage:
            headers[BAGGAGE_HEADER] = ",".join(
                f"{urllib.parse.quote(k)}={urllib.parse.quote(v)}"
                for k, v in self.baggage
            )
        return headers

    @classmethod
    def from_headers(
        cls, headers: Mapping[str, str]
    ) -> Optional["TraceContext"]:
        """Decode a context from HTTP headers; ``None`` when absent.

        A malformed trace id is treated as absent rather than an error:
        telemetry must never fail a request.  ``parent_seq`` is
        intentionally dropped — the sender's span sequence ids mean
        nothing in this process.
        """
        trace_id = headers.get(TRACE_ID_HEADER)
        if trace_id is None:
            # Header lookups are case-insensitive on http.server's
            # message objects but not on plain dicts (tests).
            for key in headers:
                if key.lower() == TRACE_ID_HEADER.lower():
                    trace_id = headers[key]
                    break
        if not trace_id or not _TRACE_ID.match(trace_id.strip()):
            return None
        baggage = []
        raw = headers.get(BAGGAGE_HEADER, "") or ""
        for pair in raw.split(","):
            if "=" not in pair:
                continue
            key, _, value = pair.partition("=")
            baggage.append(
                (urllib.parse.unquote(key), urllib.parse.unquote(value))
            )
        return cls(
            trace_id=trace_id.strip(), baggage=tuple(sorted(baggage))
        )


# -- per-thread activation ----------------------------------------------------


class _ActiveContext(threading.local):
    ctx: Optional[TraceContext] = None


_active = _ActiveContext()


def current() -> Optional[TraceContext]:
    """The context active on this thread (``None`` outside a request)."""
    return _active.ctx


class _Activation:
    """Context manager installing (and restoring) the thread's context."""

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: TraceContext):
        self._ctx = ctx
        self._prev: Optional[TraceContext] = None

    def __enter__(self) -> TraceContext:
        self._prev = _active.ctx
        _active.ctx = self._ctx
        return self._ctx

    def __exit__(self, *_exc) -> bool:
        _active.ctx = self._prev
        return False


class _NoopActivation:
    """Shared do-nothing activation for the ``ctx is None`` fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc) -> bool:
        return False


NOOP_ACTIVATION = _NoopActivation()


def activate(ctx: Optional[TraceContext]):
    """Install ``ctx`` on this thread for the ``with`` block.

    ``activate(None)`` returns a shared no-op, so callers can pass an
    optional context through unconditionally.
    """
    if ctx is None:
        return NOOP_ACTIVATION
    return _Activation(ctx)


def fork() -> Optional[TraceContext]:
    """Capture the active context for re-activation on another thread.

    The returned context is parented under the caller's innermost open
    span, so spans opened on the other thread (under
    ``activate(forked)``) nest where the fan-out happened.  ``None``
    when no context is active — the common (untraced) case costs one
    ``threading.local`` read.
    """
    ctx = _active.ctx
    if ctx is None:
        return None
    from repro.obs.spans import current_span_seq

    return ctx.with_parent(current_span_seq())
