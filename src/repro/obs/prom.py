"""Prometheus text exposition (format 0.0.4), dependency-free.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into the plain-text format every Prometheus-compatible scraper
understands:

- counters become ``repro_<name>_total`` counter families,
- gauges become ``repro_<name>`` gauge families,
- histograms become summaries — ``{quantile="0.5|0.9|0.99"}`` series
  plus ``_sum``/``_count`` — since the registry keeps exact
  count/sum and reservoir-sampled percentiles rather than fixed
  buckets.

Dotted metric names map to underscores (``service.queue_wait_s`` →
``repro_service_queue_wait_s``); any character outside
``[a-zA-Z0-9_]`` is folded to ``_`` so arbitrary span names stay legal.

:func:`parse_prometheus` is the matching validating parser.  It exists
for the tests and the CI smoke job (no new dependencies), not as a
general scraper: it checks ``# TYPE`` consistency, name legality, label
syntax, and float-parseable values, and returns the samples it read.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, Number

#: Prefix for every exported metric family.
NAMESPACE = "repro"

#: Content type a compliant scrape endpoint must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_QUANTILES = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def metric_name(dotted: str, suffix: str = "") -> str:
    """Map a dotted registry name to a legal Prometheus family name."""
    flat = _SANITIZE.sub("_", dotted)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{NAMESPACE}_{flat}{suffix}"


def _fmt(value: Number) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(
    registry: MetricsRegistry,
    extra_gauges: Optional[Mapping[str, Number]] = None,
) -> str:
    """Render the registry (plus derived gauges) as exposition text.

    ``extra_gauges`` carries point-in-time derived values computed at
    scrape time — the service's SLO gauges — without writing them back
    into the registry.
    """
    report = registry.report()
    lines: List[str] = []

    for dotted, value in report["counters"].items():
        name = metric_name(dotted, "_total")
        lines.append(f"# HELP {name} {_escape_help(dotted)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(value)}")

    gauges: Dict[str, float] = dict(report["gauges"])
    if extra_gauges:
        for dotted, value in extra_gauges.items():
            gauges[dotted] = float(value)
    for dotted in sorted(gauges):
        name = metric_name(dotted)
        lines.append(f"# HELP {name} {_escape_help(dotted)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(gauges[dotted])}")

    for dotted, summary in report["histograms"].items():
        if not summary.get("count"):
            continue
        name = metric_name(dotted)
        lines.append(f"# HELP {name} {_escape_help(dotted)}")
        lines.append(f"# TYPE {name} summary")
        for key, quantile in _QUANTILES.items():
            if key in summary:
                lines.append(
                    f'{name}{{quantile="{quantile}"}} '
                    f"{_fmt(summary[key])}"
                )
        lines.append(f"{name}_sum {_fmt(summary['sum'])}")
        lines.append(f"{name}_count {_fmt(summary['count'])}")

    return "\n".join(lines) + "\n"


class Sample(NamedTuple):
    """One parsed exposition sample."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


class ExpositionError(ValueError):
    """The scraped text violates the exposition format."""


def _base_family(sample_name: str) -> str:
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse and validate exposition text.

    Returns ``{family: {"type": str, "samples": [Sample, ...]}}``.
    Raises :class:`ExpositionError` on any formatting violation —
    unknown sample families, illegal names, bad label syntax,
    non-float values, or a ``# TYPE`` repeated/after samples.
    """
    families: Dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ExpositionError(f"line {lineno}: malformed TYPE")
            _, _, name, kind = parts
            if not _NAME_OK.match(name):
                raise ExpositionError(
                    f"line {lineno}: illegal family name {name!r}"
                )
            if kind not in (
                "counter",
                "gauge",
                "summary",
                "histogram",
                "untyped",
            ):
                raise ExpositionError(
                    f"line {lineno}: unknown type {kind!r}"
                )
            if name in families and families[name]["samples"]:
                raise ExpositionError(
                    f"line {lineno}: TYPE for {name!r} after samples"
                )
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ExpositionError(
                f"line {lineno}: malformed sample {line!r}"
            )
        name = match.group("name")
        labels: List[Tuple[str, str]] = []
        raw_labels = match.group("labels")
        if raw_labels:
            for part in raw_labels.split(","):
                pair = _LABEL.match(part.strip())
                if not pair:
                    raise ExpositionError(
                        f"line {lineno}: malformed label {part!r}"
                    )
                labels.append((pair.group(1), pair.group(2)))
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ExpositionError(
                f"line {lineno}: non-float value {raw_value!r}"
            ) from None
        family = families.get(name) or families.get(_base_family(name))
        if family is None:
            raise ExpositionError(
                f"line {lineno}: sample {name!r} without a TYPE line"
            )
        family["samples"].append(
            Sample(name=name, labels=tuple(labels), value=value)
        )
    for name, family in families.items():
        if not family["samples"]:
            raise ExpositionError(f"family {name!r} declared but empty")
    return families
