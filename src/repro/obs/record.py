"""Per-job flight records and the durable telemetry journal.

A :class:`FlightRecord` is the resource accounting for one finished
service job — where its latency went (queue wait vs. run time), what it
cost (CPU seconds, peak-RSS growth), and how much work the engine
actually did for it (tier-1 evaluations vs. cache/store/dedup hits).
The service attaches one to every job that reaches a terminal state and
returns it alongside the result, so capacity planning never requires
replaying a workload.

The :class:`TelemetryJournal` makes telemetry durable: it reuses the
store's CRC'd append-only JSONL machinery (:mod:`repro.store.journal`)
to persist every flight record plus periodic metrics-registry snapshots
to ``telemetry.jsonl``.  A crashed or drained service leaves a
post-mortem trail that ``repro obs top`` (and humans with ``jq``) can
read back — including through a torn final record.  The journal is
bounded: past ``max_records`` it atomically compacts to the newest
half, so it never grows without limit.

Nothing here runs unless explicitly constructed; the hot paths are
untouched.
"""

from __future__ import annotations

import pathlib
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]

try:  # Unix-only; the accounting degrades gracefully elsewhere.
    import resource as _resource
except ImportError:  # pragma: no cover - non-posix platforms
    _resource = None

#: Schema tags on journal records, for forward-compatible readers.
FLIGHT_KIND = "flight"
SNAPSHOT_KIND = "snapshot"


def peak_rss_kb() -> Optional[int]:
    """Process peak RSS in KiB, or ``None`` when unavailable.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalize so
    flight records compare across machines.
    """
    if _resource is None:  # pragma: no cover - non-posix platforms
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - mac only
        peak //= 1024
    return int(peak)


def thread_cpu_s() -> float:
    """CPU seconds consumed by the calling thread."""
    return time.thread_time()


@dataclass
class FlightRecord:
    """Resource accounting for one finished job."""

    job_id: str
    state: str
    trace_id: Optional[str] = None
    #: Seconds between enqueue and a worker picking the job up.
    queue_wait_s: float = 0.0
    #: Seconds a worker actively ran the job (across attempts).
    run_s: float = 0.0
    #: End-to-end seconds from submission to the terminal state.
    wall_s: float = 0.0
    #: CPU seconds the worker thread spent on the job.
    cpu_s: float = 0.0
    #: Peak-RSS growth over the job's run, KiB (None when unknown).
    peak_rss_delta_kb: Optional[int] = None
    #: Exact tier-1 model evaluations performed for this job.
    evaluations: int = 0
    #: Evaluations answered from the in-memory signature memo.
    cache_hits: int = 0
    #: Evaluations answered from the design store.
    store_hits: int = 0
    #: Other requests that coalesced onto this job while in flight.
    coalesced: int = 0
    attempts: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "job_id": self.job_id,
            "state": self.state,
            "trace_id": self.trace_id,
            "queue_wait_s": self.queue_wait_s,
            "run_s": self.run_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_delta_kb": self.peak_rss_delta_kb,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "coalesced": self.coalesced,
            "attempts": self.attempts,
        }
        out.update(self.extra)
        return out


class TelemetryJournal:
    """Bounded, crash-safe ``telemetry.jsonl`` writer.

    Records are either job flight records (``kind="flight"``) or
    metrics-registry snapshots (``kind="snapshot"``); both carry a
    wall-clock ``ts``.  :meth:`start` spawns a daemon thread appending
    a snapshot every ``snapshot_interval_s``; :meth:`record_flight` is
    called inline by the service as jobs finish.
    """

    def __init__(
        self,
        path: PathLike,
        max_records: int = 4096,
        snapshot_interval_s: float = 30.0,
        sync: str = "batch",
    ):
        # Lazy import: store.journal imports repro.obs, so importing it
        # at obs-package init time would be circular.
        from repro.store.journal import Journal

        self.path = pathlib.Path(path)
        self.max_records = max(16, int(max_records))
        self.snapshot_interval_s = float(snapshot_interval_s)
        self._sync = sync
        self._journal = Journal(self.path, sync=sync)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- writing ----------------------------------------------------------------

    def record_flight(self, flight: Dict[str, Any]) -> None:
        """Append one job's flight record (best-effort: never raises)."""
        self._append({"kind": FLIGHT_KIND, "ts": time.time(), **flight})

    def snapshot(self, metrics: Dict[str, Any], **extra: Any) -> None:
        """Append a metrics-registry snapshot."""
        self._append(
            {
                "kind": SNAPSHOT_KIND,
                "ts": time.time(),
                "metrics": metrics,
                **extra,
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        # Telemetry must never take the service down: swallow storage
        # errors (disk full, closed journal during shutdown races).
        from repro.errors import StoreError

        with self._lock:
            if self._journal is None:
                return
            try:
                self._journal.append(record)
                if len(self._journal) > self.max_records:
                    self._compact_locked()
            except StoreError:
                from repro.obs.log import get_logger

                get_logger("obs").warning(
                    "telemetry journal %s: append failed", self.path
                )

    def _compact_locked(self) -> None:
        """Atomically keep the newest half of the journal."""
        from repro.store.journal import Journal, encode_record, write_atomic

        keep = self._journal.records()[-self.max_records // 2 :]
        self._journal.close()
        write_atomic(self.path, (encode_record(r) for r in keep))
        self._journal = Journal(self.path, sync=self._sync)

    # -- periodic snapshotter -----------------------------------------------------

    def start(self, registry=None) -> None:
        """Begin periodic registry snapshots on a daemon thread."""
        if self._thread is not None:
            return
        if registry is None:
            from repro.obs.metrics import default_registry

            registry = default_registry
        def loop() -> None:
            while not self._stop.wait(self.snapshot_interval_s):
                self.snapshot(registry.report())
        self._thread = threading.Thread(
            target=loop, name="telemetry-snapshot", daemon=True
        )
        self._thread.start()

    def close(self, final_snapshot: bool = True, registry=None) -> None:
        """Stop the snapshotter, optionally snapshot once, and close."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_snapshot:
            if registry is None:
                from repro.obs.metrics import default_registry

                registry = default_registry
            self.snapshot(registry.report(), final=True)
        with self._lock:
            if self._journal is not None:
                try:
                    self._journal.close()
                finally:
                    self._journal = None

    def __enter__(self) -> "TelemetryJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_telemetry(path: PathLike) -> List[Dict[str, Any]]:
    """Read a telemetry journal leniently (tolerates a torn tail).

    Unlike opening a :class:`~repro.store.journal.Journal` this never
    writes — the reader may be inspecting a live service's file — so
    invalid lines are simply skipped.
    """
    from repro.store.journal import decode_record

    target = pathlib.Path(path)
    if not target.exists():
        return []
    records: List[Dict[str, Any]] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = decode_record(line)
        if record is not None:
            records.append(record)
    return records


def latest_snapshot(
    records: List[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The newest metrics snapshot in a telemetry record stream."""
    for record in reversed(records):
        if record.get("kind") == SNAPSHOT_KIND:
            return record
    return None


def recent_flights(
    records: List[Dict[str, Any]], limit: int = 10
) -> List[Dict[str, Any]]:
    """The newest ``limit`` flight records, oldest first."""
    flights = [r for r in records if r.get("kind") == FLIGHT_KIND]
    return flights[-limit:]


__all__ = [
    "FlightRecord",
    "TelemetryJournal",
    "peak_rss_kb",
    "thread_cpu_s",
    "read_telemetry",
    "latest_snapshot",
    "recent_flights",
    "FLIGHT_KIND",
    "SNAPSHOT_KIND",
]
