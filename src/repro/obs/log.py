"""Structured logging for the ``repro.*`` namespace.

Thin conventions over stdlib :mod:`logging`:

- every logger lives under the ``repro`` root
  (``get_logger("dse")`` → ``repro.dse``), so one handler covers the
  whole framework and third-party noise stays out;
- the level comes from ``configure_logging(level=...)`` or the
  ``REPRO_LOG_LEVEL`` environment variable (default ``WARNING``);
- ``REPRO_LOG_JSON=1`` (or ``json_lines=True``) switches the handler
  to one JSON object per line — machine-readable run logs that align
  with the JSON-lines span export.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import IO, Optional

ROOT_LOGGER = "repro"

#: Marker attribute so reconfiguration replaces our handler only.
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro`` namespace (``get_logger("sim")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: time, level, logger, message."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def _resolve_level(level: Optional[str]) -> int:
    raw = level or os.environ.get("REPRO_LOG_LEVEL") or "WARNING"
    resolved = logging.getLevelName(str(raw).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"Unknown log level: {raw!r}")
    return resolved


def configure_logging(
    level: Optional[str] = None,
    json_lines: Optional[bool] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` root logger and return it.

    Args:
        level: level name (``"debug"``, ``"INFO"``, ...); defaults to
            ``REPRO_LOG_LEVEL`` from the environment, then WARNING.
        json_lines: emit one JSON object per record; defaults to the
            ``REPRO_LOG_JSON`` environment variable.
        stream: destination (default ``sys.stderr``).
    """
    if json_lines is None:
        json_lines = os.environ.get("REPRO_LOG_JSON", "").strip() not in (
            "",
            "0",
            "false",
            "off",
        )
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(_resolve_level(level))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                datefmt="%H:%M:%S",
            )
        )
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    root.propagate = False
    return root
