"""Global observability state: the enable switch and the recorder.

The whole subsystem hangs off one module-level flag.  Every
instrumentation entry point (:func:`repro.obs.span`,
:func:`repro.obs.inc`, ...) checks :func:`enabled` first and returns a
shared no-op immediately when observability is off, so instrumented hot
paths pay one attribute load and one branch — nothing is allocated,
timed, or locked.

When enabled, finished spans and pre-encoded Chrome-trace events (from
the simulator) accumulate in the process-wide :class:`Recorder`, and
metrics accumulate in the default :class:`~repro.obs.metrics.MetricsRegistry`.
Both are bounded: past ``max_spans`` / ``max_events`` new records are
counted as dropped rather than stored, and the drop counts surface in
the run report so truncation is never silent.

Set ``REPRO_OBS=1`` in the environment to enable recording at import
time (useful for instrumenting a run without touching its code).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

_enabled: bool = False
_capture_events: bool = True
_capture_spans: bool = True
_epoch: float = 0.0
_lock = threading.Lock()
_seq: int = 0
_pid: int = 0


def enabled() -> bool:
    """Fast check: is observability recording on?"""
    return _enabled


def capture_events() -> bool:
    """Whether pre-encoded events (simulator timelines) are recorded."""
    return _enabled and _capture_events


def capture_spans() -> bool:
    """Whether finished spans are stored in the recorder."""
    return _capture_spans


def enable(capture_events: bool = True, capture_spans: bool = True) -> None:
    """Turn recording on (idempotent; the epoch is set on first call).

    Args:
        capture_events: also record pre-encoded Chrome-trace events
            (the simulator's per-kernel phase timelines).  Disable to
            keep memory flat when running many simulations under
            metrics-only observation (the benchmark harness does).
        capture_spans: store finished spans in the recorder for trace
            export.  When False, spans still time their region and
            feed the latency histograms, but nothing accumulates —
            metrics-only mode for long sessions.
    """
    global _enabled, _capture_events, _capture_spans, _epoch
    with _lock:
        if not _enabled:
            _epoch = time.perf_counter()
        _enabled = True
        _capture_events = capture_events
        _capture_spans = capture_spans


def disable() -> None:
    """Turn recording off (recorded data is kept until :func:`reset`)."""
    global _enabled
    with _lock:
        _enabled = False


def epoch() -> float:
    """``time.perf_counter()`` value taken when recording was enabled."""
    return _epoch


def next_seq() -> int:
    """Process-wide monotonic sequence number (thread-safe)."""
    global _seq
    with _lock:
        _seq += 1
        return _seq


def next_pid() -> int:
    """Allocate a fresh Chrome-trace process id (pid 0 is the spans)."""
    global _pid
    with _lock:
        _pid += 1
        return _pid


class Recorder:
    """Thread-safe store for finished spans and raw trace events."""

    def __init__(self, max_spans: int = 200_000, max_events: int = 200_000):
        self.max_spans = max_spans
        self.max_events = max_events
        self._lock = threading.Lock()
        self._spans: List = []
        self._events: List[dict] = []
        self.dropped_spans = 0
        self.dropped_events = 0

    def add_span(self, record) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            self._spans.append(record)

    def add_events(self, events: List[dict]) -> None:
        with self._lock:
            room = self.max_events - len(self._events)
            if room <= 0:
                self.dropped_events += len(events)
                return
            kept = events[:room]
            self._events.extend(kept)
            self.dropped_events += len(events) - len(kept)

    def spans(self) -> List:
        with self._lock:
            return list(self._spans)

    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    def drop_counts(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spans": self.dropped_spans,
                "events": self.dropped_events,
            }

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._events.clear()
            self.dropped_spans = 0
            self.dropped_events = 0


#: The process-wide recorder every span/event lands in.
recorder = Recorder()


def record_chrome_events(events: List[dict]) -> None:
    """Record pre-encoded Chrome-trace events (no-op when disabled)."""
    if capture_events():
        recorder.add_events(events)


def reset() -> None:
    """Clear recorded spans/events, counters, and the sequence state.

    The enabled flag is left as-is; the default metrics registry is
    cleared too (imported lazily to avoid a module cycle).
    """
    global _seq, _pid, _epoch
    from repro.obs.metrics import default_registry

    with _lock:
        _seq = 0
        _pid = 0
        if _enabled:
            _epoch = time.perf_counter()
    recorder.clear()
    default_registry.reset()


def _init_from_env(environ: Optional[Dict[str, str]] = None) -> None:
    env = os.environ if environ is None else environ
    if env.get("REPRO_OBS", "").strip() not in ("", "0", "false", "off"):
        enable()


_init_from_env()
