"""repro.obs — the unified observability layer.

One dependency-free subsystem for seeing where a run spends its time,
threaded through every layer of the framework (frontend → DSE → model
→ simulator → CLI):

- **Spans** — ``with obs.span("dse.explore", candidates=n):``
  hierarchical wall-time regions with attributes
  (:mod:`repro.obs.spans`).
- **Metrics** — counters, gauges, and histograms with percentile
  summaries in a process-wide registry (:mod:`repro.obs.metrics`).
- **Structured logging** — stdlib logging under the ``repro.*``
  namespace, env-configurable, optional JSON lines
  (:mod:`repro.obs.log`).
- **Exporters** — a merged Chrome-trace/Perfetto file (DSE spans and
  simulator kernel-phase timelines in one view), a JSON-lines event
  stream, and a structured run report (:mod:`repro.obs.export`).

Everything is **off by default**: instrumented hot paths check
:func:`enabled` and fall through a shared no-op, so the disabled cost
is one branch.  Turn recording on with :func:`enable` (or
``REPRO_OBS=1``), run, then export::

    from repro import obs

    obs.enable()
    ...  # any framework work: optimize_*, simulate, extract, ...
    obs.export_chrome_trace("trace.json")   # open in ui.perfetto.dev
    print(obs.render_report_markdown())

Naming conventions and the full CLI/env surface are documented in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.core import (
    capture_events,
    capture_spans,
    disable,
    enable,
    enabled,
    next_pid,
    next_seq,
    record_chrome_events,
    recorder,
    reset,
)
from repro.obs.export import (
    REPORT_SCHEMA,
    ChromeTraceBuilder,
    build_chrome_trace,
    export_chrome_trace,
    export_jsonl,
    export_run_report,
    read_jsonl,
    render_report_markdown,
    run_report,
    spans_to_chrome_events,
)
from repro.obs.log import (
    JsonLinesFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    inc,
    observe,
    percentile,
    set_gauge,
)
from repro.obs.prom import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    ExpositionError,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.record import (
    FlightRecord,
    TelemetryJournal,
    latest_snapshot,
    peak_rss_kb,
    read_telemetry,
    recent_flights,
    thread_cpu_s,
)
from repro.obs.spans import NOOP_SPAN, Span, SpanRecord, current_span_seq, span
from repro.obs.trace import (
    NOOP_ACTIVATION,
    TraceContext,
    activate as activate_trace,
    current as current_trace,
    fork as fork_trace,
)

__all__ = [
    # switch + recorder
    "enabled",
    "enable",
    "disable",
    "reset",
    "recorder",
    "capture_events",
    "capture_spans",
    "record_chrome_events",
    "next_seq",
    "next_pid",
    # spans
    "span",
    "Span",
    "SpanRecord",
    "NOOP_SPAN",
    "current_span_seq",
    # trace context
    "TraceContext",
    "activate_trace",
    "current_trace",
    "fork_trace",
    "NOOP_ACTIVATION",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    "percentile",
    # logging
    "get_logger",
    "configure_logging",
    "JsonLinesFormatter",
    # exporters
    "REPORT_SCHEMA",
    "ChromeTraceBuilder",
    "spans_to_chrome_events",
    "build_chrome_trace",
    "export_chrome_trace",
    "export_jsonl",
    "read_jsonl",
    "run_report",
    "export_run_report",
    "render_report_markdown",
    # prometheus exposition
    "render_prometheus",
    "parse_prometheus",
    "ExpositionError",
    "PROMETHEUS_CONTENT_TYPE",
    # flight records + telemetry journal
    "FlightRecord",
    "TelemetryJournal",
    "read_telemetry",
    "latest_snapshot",
    "recent_flights",
    "peak_rss_kb",
    "thread_cpu_s",
]
