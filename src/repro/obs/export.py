"""Exporters: Chrome trace, JSON-lines event stream, run report.

Three views over one recording:

- :func:`build_chrome_trace` / :func:`export_chrome_trace` — the
  recorded spans (pid 0, one Chrome thread per Python thread) merged
  with every pre-encoded event block the simulator recorded (one
  Chrome process per simulation), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
- :func:`export_jsonl` / :func:`read_jsonl` — an append-friendly
  JSON-lines stream of spans, raw events, and metric summaries.
- :func:`run_report` / :func:`render_report_markdown` — a structured
  summary dict (metrics, derived rates such as the evaluator's cache
  hit-rate, per-span-name aggregates) and its human-readable
  rendering.

:class:`ChromeTraceBuilder` is the one event-encoding path shared with
:mod:`repro.sim.trace`; nothing here imports the rest of the framework.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs import core
from repro.obs.metrics import default_registry
from repro.obs.spans import SpanRecord

PathLike = Union[str, pathlib.Path]

#: Version tag for the run-report schema.
REPORT_SCHEMA = "repro.run_report/1"


class ChromeTraceBuilder:
    """Incremental encoder for Chrome-tracing JSON events.

    Produces the event dicts the ``chrome://tracing`` / Perfetto JSON
    format expects: ``M`` (metadata) events naming processes and
    threads, and ``X`` (complete) events for timed slices.  Timestamps
    and durations are microseconds.
    """

    def __init__(self):
        self.events: List[dict] = []

    def process_name(self, pid: int, name: str) -> None:
        self.events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        self.events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    def complete(
        self,
        name: str,
        cat: str,
        pid: int,
        tid: int,
        ts_us: float,
        dur_us: float,
        args: Optional[dict] = None,
        cname: Optional[str] = None,
    ) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": ts_us,
            "dur": dur_us,
        }
        if cname is not None:
            event["cname"] = cname
        if args is not None:
            event["args"] = args
        self.events.append(event)


def spans_to_chrome_events(
    spans: Sequence[SpanRecord], pid: int = 0
) -> List[dict]:
    """Encode span records as Chrome events (one tid per thread)."""
    builder = ChromeTraceBuilder()
    builder.process_name(pid, "repro (spans)")
    tids: Dict[str, int] = {}
    for record in spans:
        tid = tids.get(record.thread)
        if tid is None:
            tid = tids[record.thread] = len(tids)
            builder.thread_name(pid, tid, record.thread)
        args = {"seq": record.seq}
        if record.parent_seq is not None:
            args["parent_seq"] = record.parent_seq
        if record.trace_id is not None:
            args["trace_id"] = record.trace_id
        args.update(record.attrs)
        builder.complete(
            record.name,
            "span",
            pid,
            tid,
            record.start_s * 1e6,
            record.duration_s * 1e6,
            args=args,
        )
    return builder.events


def build_chrome_trace(trace_id: Optional[str] = None) -> dict:
    """The full recording as one Chrome-tracing JSON object.

    With ``trace_id``, only the spans stamped with that request's trace
    context are included — the merged per-job trace the service serves
    from ``GET /jobs/<id>/trace``.  Raw simulator events carry no trace
    ids and are omitted from a filtered trace.
    """
    spans = core.recorder.spans()
    if trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
        events = spans_to_chrome_events(spans)
    else:
        events = spans_to_chrome_events(spans) + core.recorder.events()
    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": len(spans),
            "dropped": core.recorder.drop_counts(),
        },
    }
    if trace_id is not None:
        trace["otherData"]["trace_id"] = trace_id
    return trace


def export_chrome_trace(
    path: PathLike, trace_id: Optional[str] = None
) -> pathlib.Path:
    """Write the merged Chrome trace to ``path`` and return it."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(build_chrome_trace(trace_id), indent=1))
    return target


# -- JSON-lines event stream -----------------------------------------------


def export_jsonl(path: PathLike) -> pathlib.Path:
    """Write spans, raw events, and metric summaries as JSON lines.

    Each line is ``{"type": "span" | "event" | "metric", ...}``; the
    stream round-trips through :func:`read_jsonl`.
    """
    target = pathlib.Path(path)
    report = default_registry.report()
    with target.open("w") as stream:
        for record in core.recorder.spans():
            stream.write(
                json.dumps({"type": "span", **record.as_dict()}) + "\n"
            )
        for event in core.recorder.events():
            stream.write(
                json.dumps({"type": "event", "data": event}) + "\n"
            )
        for kind in ("counters", "gauges"):
            for name, value in report[kind].items():
                stream.write(
                    json.dumps(
                        {
                            "type": "metric",
                            "kind": kind[:-1],
                            "name": name,
                            "value": value,
                        }
                    )
                    + "\n"
                )
        for name, summary in report["histograms"].items():
            stream.write(
                json.dumps(
                    {
                        "type": "metric",
                        "kind": "histogram",
                        "name": name,
                        "summary": summary,
                    }
                )
                + "\n"
            )
    return target


def read_jsonl(path: PathLike) -> List[dict]:
    """Parse a JSON-lines stream back into a list of dicts."""
    lines = pathlib.Path(path).read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


# -- run report -------------------------------------------------------------


def _derived_rates(counters: Dict[str, float]) -> Dict[str, float]:
    """Headline ratios computed from the raw counters."""
    derived: Dict[str, float] = {}
    candidates = counters.get("dse.candidates", 0)
    if candidates:
        for rate, source in (
            ("dse.cache_hit_rate", "dse.cache_hits"),
            ("dse.prune_rate", "dse.pruned"),
            ("dse.infeasible_rate", "dse.infeasible"),
        ):
            derived[rate] = counters.get(source, 0) / candidates
    estimates = counters.get("fpga.estimates", 0)
    if estimates:
        derived["fpga.estimate_cache_hit_rate"] = (
            counters.get("fpga.estimate_cache_hits", 0) / estimates
        )
    store_probes = counters.get("store.hits", 0) + counters.get(
        "store.misses", 0
    )
    if store_probes:
        derived["store.hit_rate"] = (
            counters.get("store.hits", 0) / store_probes
        )
    jit_probes = counters.get("sim.jit.cache_hits", 0) + counters.get(
        "sim.jit.cache_misses", 0
    )
    if jit_probes:
        derived["sim.jit.cache_hit_rate"] = (
            counters.get("sim.jit.cache_hits", 0) / jit_probes
        )
    screened = counters.get("search.screened", 0)
    promoted = counters.get("search.promoted", 0)
    if screened or promoted:
        derived["search.promotion_rate"] = promoted / (
            screened + promoted
        )
    requests = counters.get("service.requests", 0)
    if requests:
        derived["service.dedup_rate"] = (
            counters.get("service.dedup", 0) / requests
        )
        derived["service.reject_rate"] = (
            counters.get("service.rejected", 0) / requests
        )
    return derived


def _span_aggregates(spans: Iterable[SpanRecord]) -> Dict[str, dict]:
    by_name: Dict[str, dict] = {}
    for record in spans:
        agg = by_name.setdefault(
            record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        agg["count"] += 1
        agg["total_s"] += record.duration_s
        agg["max_s"] = max(agg["max_s"], record.duration_s)
    return dict(sorted(by_name.items()))


def run_report() -> dict:
    """Structured summary of the whole recording (JSON-serializable)."""
    spans = core.recorder.spans()
    metrics = default_registry.report()
    return {
        "schema": REPORT_SCHEMA,
        "metrics": metrics,
        "derived": _derived_rates(metrics["counters"]),
        "spans": {
            "count": len(spans),
            "dropped": core.recorder.drop_counts(),
            "by_name": _span_aggregates(spans),
        },
    }


def export_run_report(path: PathLike) -> pathlib.Path:
    """Write :func:`run_report` as JSON to ``path`` and return it."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(run_report(), indent=1, sort_keys=True))
    return target


def render_report_markdown(report: Optional[dict] = None) -> str:
    """Markdown rendering of a run report (for terminals and logs)."""
    report = report if report is not None else run_report()
    lines: List[str] = ["# Run report", ""]
    derived = report.get("derived", {})
    if derived:
        lines.append("## Derived rates")
        for name, value in sorted(derived.items()):
            lines.append(f"- {name}: {value:.1%}")
        lines.append("")
    counters = report["metrics"]["counters"]
    if counters:
        lines.append("## Counters")
        for name, value in counters.items():
            lines.append(f"- {name}: {value:g}")
        lines.append("")
    gauges = report["metrics"]["gauges"]
    if gauges:
        lines.append("## Gauges")
        for name, value in gauges.items():
            lines.append(f"- {name}: {value:g}")
        lines.append("")
    histograms = report["metrics"]["histograms"]
    if histograms:
        lines.append("## Histograms")
        for name, summary in histograms.items():
            if not summary.get("count"):
                continue
            lines.append(
                f"- {name}: n={summary['count']} "
                f"mean={summary['mean']:.3e} p50={summary['p50']:.3e} "
                f"p99={summary['p99']:.3e} max={summary['max']:.3e}"
            )
        lines.append("")
    spans = report["spans"]["by_name"]
    if spans:
        lines.append("## Spans")
        for name, agg in spans.items():
            lines.append(
                f"- {name}: {agg['count']}x, total {agg['total_s']:.3f}s"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
