"""Argument-validation helpers used across the framework."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import SpecificationError


def check_positive(name: str, value: float) -> float:
    """Raise unless ``value`` is strictly positive; return it."""
    if value <= 0:
        raise SpecificationError(f"{name} must be positive, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise unless ``value`` lies in [0, 1]; return it."""
    if not 0.0 <= value <= 1.0:
        raise SpecificationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_dim_tuple(
    name: str, values: Sequence[int], ndim: int
) -> Tuple[int, ...]:
    """Coerce ``values`` to a tuple of length ``ndim`` of ints."""
    result = tuple(int(v) for v in values)
    if len(result) != ndim:
        raise SpecificationError(
            f"{name} must have {ndim} entries, got {len(result)}: {result}"
        )
    return result


def check_positive_tuple(
    name: str, values: Sequence[int], ndim: int
) -> Tuple[int, ...]:
    """Coerce to a tuple of ``ndim`` strictly positive ints."""
    result = check_dim_tuple(name, values, ndim)
    for v in result:
        if v <= 0:
            raise SpecificationError(
                f"All entries of {name} must be positive, got {result}"
            )
    return result
