"""Unit helpers: cycles, seconds, and byte quantities.

The analytic model and the simulator both work in *clock cycles* at the
kernel clock frequency (the paper fixes 200 MHz); the host-facing API
reports seconds.  Memory bandwidth is specified in bytes/second and
converted to bytes/cycle at the kernel clock.
"""

from __future__ import annotations

from repro.errors import SpecificationError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def kib(n: float) -> float:
    """``n`` kibibytes in bytes."""
    return n * KIB


def mib(n: float) -> float:
    """``n`` mebibytes in bytes."""
    return n * MIB


def gib(n: float) -> float:
    """``n`` gibibytes in bytes."""
    return n * GIB


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    if frequency_hz <= 0:
        raise SpecificationError(f"Frequency must be positive: {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert seconds into cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise SpecificationError(f"Frequency must be positive: {frequency_hz}")
    return seconds * frequency_hz


def bytes_per_cycle(bandwidth_bytes_per_s: float, frequency_hz: float) -> float:
    """Peak bytes transferable per kernel clock cycle."""
    if bandwidth_bytes_per_s <= 0:
        raise SpecificationError(
            f"Bandwidth must be positive: {bandwidth_bytes_per_s}"
        )
    return bandwidth_bytes_per_s / float(frequency_hz)
