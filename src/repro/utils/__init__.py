"""Shared utilities: nd-grid geometry, units, and validation helpers."""

from repro.utils.grids import (
    Box,
    box_from_shape,
    clip_box,
    expand_box,
    iter_boxes,
    shrink_box,
    split_extent,
)
from repro.utils.units import (
    bytes_per_cycle,
    cycles_to_seconds,
    gib,
    kib,
    mib,
    seconds_to_cycles,
)
from repro.utils.validation import (
    check_dim_tuple,
    check_positive,
    check_positive_tuple,
    check_probability,
)

__all__ = [
    "Box",
    "box_from_shape",
    "clip_box",
    "expand_box",
    "iter_boxes",
    "shrink_box",
    "split_extent",
    "bytes_per_cycle",
    "cycles_to_seconds",
    "gib",
    "kib",
    "mib",
    "seconds_to_cycles",
    "check_dim_tuple",
    "check_positive",
    "check_positive_tuple",
    "check_probability",
]
