"""N-dimensional axis-aligned box geometry for tiles, halos, and cones.

A :class:`Box` is a half-open hyper-rectangle ``[lo, hi)`` in grid-index
space.  Boxes are the common currency between the tiling layer (tile
footprints), the functional simulator (numpy slicing), and the analytic
model (element counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import SpecificationError


@dataclass(frozen=True)
class Box:
    """Half-open axis-aligned box ``[lo_d, hi_d)`` per dimension.

    Attributes:
        lo: inclusive lower corner, one entry per dimension.
        hi: exclusive upper corner, one entry per dimension.
    """

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise SpecificationError(
                f"Box corners have mismatched ranks: {self.lo} vs {self.hi}"
            )
        for lo_d, hi_d in zip(self.lo, self.hi):
            if hi_d < lo_d:
                raise SpecificationError(f"Box has negative extent: {self}")

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Extent along each dimension."""
        return tuple(hi - lo for lo, hi in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Number of grid points contained in the box."""
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def is_empty(self) -> bool:
        """True when the box contains no grid points."""
        return any(hi <= lo for lo, hi in zip(self.lo, self.hi))

    def contains_point(self, point: Sequence[int]) -> bool:
        """Return True when ``point`` lies inside the box."""
        return all(lo <= p < hi for lo, p, hi in zip(self.lo, point, self.hi))

    def contains_box(self, other: "Box") -> bool:
        """Return True when ``other`` lies entirely inside this box."""
        if other.is_empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def intersect(self, other: "Box") -> "Box":
        """Intersection of two boxes (possibly empty)."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(
            max(lo_d, min(a, b))
            for lo_d, a, b in zip(lo, self.hi, other.hi)
        )
        return Box(lo, hi)

    def overlaps(self, other: "Box") -> bool:
        """Return True when the two boxes share at least one point."""
        return not self.intersect(other).is_empty

    def translate(self, offset: Sequence[int]) -> "Box":
        """Box shifted by ``offset`` along each dimension."""
        return Box(
            tuple(lo + o for lo, o in zip(self.lo, offset)),
            tuple(hi + o for hi, o in zip(self.hi, offset)),
        )

    def slices(self) -> Tuple[slice, ...]:
        """Numpy slicing tuple selecting the box from a grid array."""
        return tuple(slice(lo, hi) for lo, hi in zip(self.lo, self.hi))

    def local_slices(self, origin: Sequence[int]) -> Tuple[slice, ...]:
        """Slicing tuple relative to a local array anchored at ``origin``."""
        return tuple(
            slice(lo - o, hi - o) for lo, hi, o in zip(self.lo, self.hi, origin)
        )

    def __str__(self) -> str:
        spans = ", ".join(f"[{lo},{hi})" for lo, hi in zip(self.lo, self.hi))
        return f"Box({spans})"


def box_from_shape(shape: Sequence[int]) -> Box:
    """Box covering ``[0, shape_d)`` in every dimension."""
    return Box(tuple(0 for _ in shape), tuple(int(s) for s in shape))


def expand_box(box: Box, margin: Sequence[int]) -> Box:
    """Grow a box by ``margin_d`` on *both* sides of each dimension."""
    return Box(
        tuple(lo - m for lo, m in zip(box.lo, margin)),
        tuple(hi + m for hi, m in zip(box.hi, margin)),
    )


def shrink_box(box: Box, margin: Sequence[int]) -> Box:
    """Shrink a box by ``margin_d`` on both sides, clamping at empty."""
    lo = tuple(lo_d + m for lo_d, m in zip(box.lo, margin))
    hi = tuple(max(lo_d, h - m) for lo_d, h, m in zip(lo, box.hi, margin))
    return Box(lo, hi)


def clip_box(box: Box, domain: Box) -> Box:
    """Clip a box to a domain (intersection)."""
    return box.intersect(domain)


def split_extent(length: int, parts: int) -> List[int]:
    """Split ``length`` into ``parts`` near-equal integer extents.

    The first ``length % parts`` extents receive one extra element, so
    the result always sums to ``length`` exactly.
    """
    if parts <= 0:
        raise SpecificationError(f"Cannot split into {parts} parts")
    if length < 0:
        raise SpecificationError(f"Cannot split negative length {length}")
    base, remainder = divmod(length, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def partition_extent(length: int, weights: Sequence[float]) -> List[int]:
    """Split ``length`` proportionally to ``weights`` (sums exactly).

    Uses largest-remainder rounding so the partition is deterministic,
    sums to ``length``, and every non-zero weight receives at least one
    element when ``length >= len(weights)``.
    """
    if not weights:
        raise SpecificationError("partition_extent requires weights")
    if any(w <= 0 for w in weights):
        raise SpecificationError(f"Weights must be positive: {weights}")
    total_weight = float(sum(weights))
    raw = [length * w / total_weight for w in weights]
    floors = [int(r) for r in raw]
    # Guarantee a minimum of one element per part when possible.
    if length >= len(weights):
        floors = [max(1, f) for f in floors]
    deficit = length - sum(floors)
    remainders = sorted(
        range(len(weights)),
        key=lambda i: raw[i] - int(raw[i]),
        reverse=(deficit > 0),
    )
    index = 0
    while deficit != 0 and weights:
        i = remainders[index % len(weights)]
        step = 1 if deficit > 0 else -1
        if step < 0 and floors[i] <= 1:
            index += 1
            continue
        floors[i] += step
        deficit -= step
        index += 1
    return floors


def iter_boxes(
    origin: Sequence[int], extents_per_dim: Sequence[Sequence[int]]
) -> Iterator[Tuple[Tuple[int, ...], Box]]:
    """Iterate the rectilinear grid of boxes defined by per-dim extents.

    Args:
        origin: lower corner of the covered region.
        extents_per_dim: for each dimension, the list of consecutive
            extents along that dimension.

    Yields:
        ``(index, box)`` pairs where ``index`` is the grid coordinate of
        the box (one entry per dimension).
    """
    ndim = len(extents_per_dim)
    starts: List[List[int]] = []
    for d in range(ndim):
        offs = [origin[d]]
        for extent in extents_per_dim[d]:
            offs.append(offs[-1] + extent)
        starts.append(offs)

    counts = [len(extents_per_dim[d]) for d in range(ndim)]
    index = [0] * ndim
    while True:
        lo = tuple(starts[d][index[d]] for d in range(ndim))
        hi = tuple(starts[d][index[d] + 1] for d in range(ndim))
        yield tuple(index), Box(lo, hi)
        # Odometer increment.
        d = ndim - 1
        while d >= 0:
            index[d] += 1
            if index[d] < counts[d]:
                break
            index[d] = 0
            d -= 1
        if d < 0:
            return
