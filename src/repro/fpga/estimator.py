"""Design resource estimation (FF / LUT / DSP / BRAM).

Plays the role of the HLS resource report in the paper's Table 3.  The
estimate is built from first principles:

- **DSP**: each processing element instantiates the stencil's
  floating-point multipliers and adders (7-series: 3 DSP48 per
  multiplier, 2 per full-DSP adder).  Designs with equal parallelism
  and unroll therefore report equal DSP — exactly the paper's
  observation.
- **BRAM**: each kernel buffers its read footprint in ``local`` arrays
  (one per field, partitioned for port bandwidth); pipe FIFOs add their
  own blocks.  Pipe sharing shrinks footprints, which is where the
  paper's 8-25 % BRAM saving comes from.
- **FF/LUT**: per-PE datapath registers/logic, per-kernel control and
  burst-interface overhead, plus the BRAM-coupled multiplexing the
  paper calls out ("large OpenCL data arrays ... need multiplexers and
  registers to bundle BRAMs"), which is why FF/LUT savings track BRAM
  savings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.fpga.bram import fifo_resources, local_array_blocks
from repro.fpga.flexcl import FlexCLEstimator, PipelineReport
from repro.fpga.resources import FpgaDevice, ResourceVector
from repro.tiling.design import StencilDesign

#: 7-series operator costs.
DSP_PER_MUL = 3
DSP_PER_ADD = 2
FF_PER_MUL = 300
FF_PER_ADD = 400
LUT_PER_MUL = 200
LUT_PER_ADD = 300

#: Per-kernel fixed overhead: control FSM, AXI burst infrastructure.
KERNEL_BASE = ResourceVector(ff=2_800, lut=4_200, dsp=0, bram18=0)

#: BRAM-coupled banking/muxing overhead per 18 Kb block.
FF_PER_BRAM = 12
LUT_PER_BRAM = 40


@dataclass(frozen=True)
class DesignResources:
    """Estimated utilization of one design, with its composition."""

    total: ResourceVector
    kernels: ResourceVector
    pipes: ResourceVector

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Nested plain-dict view."""
        return {
            "total": self.total.as_dict(),
            "kernels": self.kernels.as_dict(),
            "pipes": self.pipes.as_dict(),
        }


class ResourceEstimator:
    """Estimates FF/LUT/DSP/BRAM for stencil designs."""

    def __init__(self, flexcl: Optional[FlexCLEstimator] = None):
        self.flexcl = flexcl or FlexCLEstimator()
        self._cache: Dict[Tuple, DesignResources] = {}
        self._lock = threading.Lock()

    def estimate(
        self,
        design: StencilDesign,
        report: Optional[PipelineReport] = None,
    ) -> DesignResources:
        """Estimate a design's total resource utilization.

        Estimates are memoized by the design's canonical signature (the
        estimate depends on nothing else), so repeated DSE evaluations
        of recurring designs are free.  Safe to call from worker
        threads.  Passing an explicit ``report`` bypasses the cache.
        """
        if report is not None:
            return self._estimate_uncached(design, report)
        key = design.signature()
        with self._lock:
            cached = self._cache.get(key)
        if obs.enabled():
            obs.inc("fpga.estimates")
            obs.inc("fpga.estimate_cache_hits", int(cached is not None))
        if cached is not None:
            return cached
        with obs.span("fpga.estimate"):
            report = self.flexcl.estimate(
                design.spec.pattern, design.unroll
            )
            resources = self._estimate_uncached(design, report)
        with self._lock:
            return self._cache.setdefault(key, resources)

    def _estimate_uncached(
        self, design: StencilDesign, report: PipelineReport
    ) -> DesignResources:
        kernels = ResourceVector()
        for tile in design.tiles:
            kernels = kernels + self._kernel_resources(design, tile, report)
        pipes = self._pipe_resources(design)
        return DesignResources(
            total=kernels + pipes, kernels=kernels, pipes=pipes
        )

    def prime(
        self, design: StencilDesign, resources: DesignResources
    ) -> DesignResources:
        """Seed the estimate cache with an externally-computed result.

        Used by the vectorized batch engine
        (:func:`repro.fpga.batch.estimate_batch`) to write its
        integer-identical results through to the scalar cache.  First
        write wins; the retained entry is returned.
        """
        with self._lock:
            return self._cache.setdefault(design.signature(), resources)

    def check_fits(
        self, design: StencilDesign, device: FpgaDevice
    ) -> DesignResources:
        """Estimate and assert the design fits the device."""
        resources = self.estimate(design)
        device.check_fits(resources.total)
        return resources

    # -- components ------------------------------------------------------------

    def _kernel_resources(
        self,
        design: StencilDesign,
        tile,
        report: PipelineReport,
    ) -> ResourceVector:
        pattern = design.spec.pattern
        muls = pattern.multiplies_per_cell()
        adds = pattern.adds_per_cell()
        pe = ResourceVector(
            ff=muls * FF_PER_MUL + adds * FF_PER_ADD,
            lut=muls * LUT_PER_MUL + adds * LUT_PER_ADD,
            dsp=muls * DSP_PER_MUL + adds * DSP_PER_ADD,
            bram18=0,
        )
        datapath = pe.scaled(design.unroll)

        cells = design.tile_local_cells(tile)
        bytes_per_element = design.spec.element_bytes
        blocks = 0
        for _field in pattern.fields:
            blocks += local_array_blocks(
                cells,
                bytes_per_element,
                partitions=report.partitions,
                double_buffered=False,
            )
        for _aux in pattern.aux:
            blocks += local_array_blocks(
                cells,
                bytes_per_element,
                partitions=report.partitions,
                double_buffered=False,
            )
        memory = ResourceVector(
            ff=blocks * FF_PER_BRAM,
            lut=blocks * LUT_PER_BRAM,
            dsp=0,
            bram18=blocks,
        )
        return KERNEL_BASE + datapath + memory

    def _pipe_resources(self, design: StencilDesign) -> ResourceVector:
        total = ResourceVector()
        word_bits = design.spec.element_bytes * 8
        for _face in design.pipe_faces:
            one = fifo_resources(design.pipe_depth, word_bits)
            # Two one-directional pipes per face, carrying every field.
            total = total + one.scaled(2 * design.spec.pattern.num_fields)
        return total


def estimate_resources(
    design: StencilDesign, report: Optional[PipelineReport] = None
) -> DesignResources:
    """Convenience wrapper around :class:`ResourceEstimator`."""
    return ResourceEstimator().estimate(design, report)
