"""NumPy-vectorized batch resource estimation.

Companion to :mod:`repro.model.batch`: estimates FF/LUT/DSP/BRAM for a
whole array of candidate designs in one pass, with the same parity
contract — component ``i`` of every array is bitwise-equal (here:
integer-equal) to :meth:`ResourceEstimator.estimate`'s result for
``designs[i]``.

The estimator's arithmetic is almost entirely integer (exact in any
order), so vectorization is straightforward; the one rounding-sensitive
step is the BRAM packing model's ``math.ceil(a / b)``, which divides
through ``float``.  The shared :func:`~repro.fpga.parity.check_parity_range`
guard keeps cell counts below ``2**52`` so NumPy's
``ceil(int64 / int64)`` rounds identically, and every integer
intermediate below ``2**62``.

Per-candidate scalars that are cheap and already memoized (the FlexCL
pipeline report, per-pattern operator counts, per-configuration FIFO
resources) are computed in plain Python; the per-tile array-packing
math — the part that scales with the size of the design space — runs
on ``int64`` columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fpga.bram import _depth_per_block, fifo_resources
from repro.fpga.estimator import (
    DSP_PER_ADD,
    DSP_PER_MUL,
    FF_PER_ADD,
    FF_PER_BRAM,
    FF_PER_MUL,
    KERNEL_BASE,
    LUT_PER_ADD,
    LUT_PER_BRAM,
    LUT_PER_MUL,
    DesignResources,
)
from repro.fpga.flexcl import FlexCLEstimator
from repro.fpga.parity import check_parity_range
from repro.fpga.resources import ResourceVector
from repro.tiling.design import StencilDesign

__all__ = ["BatchResources", "ResourceColumns", "estimate_batch"]

_COMPONENTS = ("ff", "lut", "dsp", "bram18")


@dataclass(frozen=True)
class ResourceColumns:
    """Columnar ``int64`` view of one resource vector per candidate."""

    ff: np.ndarray
    lut: np.ndarray
    dsp: np.ndarray
    bram18: np.ndarray

    def __len__(self) -> int:
        return len(self.ff)

    def row(self, i: int) -> ResourceVector:
        """Candidate ``i``'s resources as a scalar vector."""
        return ResourceVector(
            ff=int(self.ff[i]),
            lut=int(self.lut[i]),
            dsp=int(self.dsp[i]),
            bram18=int(self.bram18[i]),
        )


@dataclass(frozen=True)
class BatchResources:
    """Per-candidate resource estimates, kernel/pipe composition kept."""

    total: ResourceColumns
    kernels: ResourceColumns
    pipes: ResourceColumns

    def __len__(self) -> int:
        return len(self.total)

    def design_resources(self, i: int) -> DesignResources:
        """Candidate ``i``'s estimate as the scalar estimator returns it."""
        return DesignResources(
            total=self.total.row(i),
            kernels=self.kernels.row(i),
            pipes=self.pipes.row(i),
        )

    def feasible(self, limit: ResourceVector) -> np.ndarray:
        """Boolean mask: which candidates fit within ``limit``.

        Entry ``i`` equals ``design_resources(i).total.fits_within(limit)``.
        """
        return (
            (self.total.ff <= limit.ff)
            & (self.total.lut <= limit.lut)
            & (self.total.dsp <= limit.dsp)
            & (self.total.bram18 <= limit.bram18)
        )


def _pipe_face_count(design: StencilDesign) -> int:
    """``len(design.pipe_faces)`` without materializing the face objects.

    Faces pair adjacent tiles along each dimension with nonzero radius:
    ``(counts_d - 1) * prod(counts_j, j != d)`` pairs per dimension.
    """
    if not design.sharing:
        return 0
    counts = design.tile_grid.counts
    total = 0
    for d, r in enumerate(design.radius):
        if r == 0:
            continue
        per_dim = counts[d] - 1
        for j, c in enumerate(counts):
            if j != d:
                per_dim *= c
        total += per_dim
    return total


def estimate_batch(
    designs: Sequence[StencilDesign],
    flexcl: Optional[FlexCLEstimator] = None,
) -> BatchResources:
    """Estimate resources for a whole array of candidates.

    Args:
        designs: candidate designs (mixed dimensionalities allowed).
        flexcl: shared pipeline analyzer (one is built when omitted).

    Returns:
        A :class:`BatchResources` aligned with ``designs``.

    Raises:
        BatchRangeError: when any candidate's geometry exceeds the
            exact-parity range (fall back to the scalar estimator).
    """
    designs = list(designs)
    n = len(designs)
    flexcl = flexcl or FlexCLEstimator()
    out: Dict[str, Dict[str, np.ndarray]] = {
        part: {c: np.zeros(n, dtype=np.int64) for c in _COMPONENTS}
        for part in ("kernels", "pipes")
    }

    op_cache: Dict[Tuple, Tuple[int, int]] = {}
    fifo_cache: Dict[Tuple[int, int, int], ResourceVector] = {}
    groups: Dict[int, List[int]] = {}
    for i, design in enumerate(designs):
        groups.setdefault(design.spec.ndim, []).append(i)

    for ndim, idx in groups.items():
        g = len(idx)
        k_arr = np.empty(g, dtype=np.int64)
        dp = {c: np.empty(g, dtype=np.int64) for c in _COMPONENTS}
        partitions = np.empty(g, dtype=np.int64)
        gang = np.empty(g, dtype=np.int64)
        depth = np.empty(g, dtype=np.int64)
        narrays = np.empty(g, dtype=np.int64)
        shapes: List[Tuple[int, ...]] = []
        cones: List[Tuple[int, ...]] = []
        halos: List[Tuple[int, ...]] = []
        radii: List[Tuple[int, ...]] = []
        h_list: List[int] = []
        pair_cand: List[int] = []
        seg_starts: List[int] = []
        max_extent = 0
        max_r = 0
        max_h = 1
        max_scale = 1
        for row, i in enumerate(idx):
            design = designs[i]
            spec = design.spec
            pattern = spec.pattern
            report = flexcl.estimate(pattern, design.unroll)
            pkey = pattern.signature()
            ops = op_cache.get(pkey)
            if ops is None:
                ops = (
                    pattern.multiplies_per_cell(),
                    pattern.adds_per_cell(),
                )
                op_cache[pkey] = ops
            muls, adds = ops
            unroll = design.unroll
            dp["ff"][row] = (muls * FF_PER_MUL + adds * FF_PER_ADD) * unroll
            dp["lut"][row] = (
                muls * LUT_PER_MUL + adds * LUT_PER_ADD
            ) * unroll
            dp["dsp"][row] = (
                muls * DSP_PER_MUL + adds * DSP_PER_ADD
            ) * unroll
            dp["bram18"][row] = 0
            k_arr[row] = design.parallelism
            partitions[row] = report.partitions
            word_bits = spec.element_bytes * 8
            gang[row], depth[row] = _depth_per_block(word_bits)
            narrays[row] = pattern.num_fields + len(pattern.aux)

            n_faces = _pipe_face_count(design)
            if n_faces:
                fkey = (
                    design.pipe_depth,
                    word_bits,
                    pattern.num_fields,
                )
                per_face = fifo_cache.get(fkey)
                if per_face is None:
                    per_face = fifo_resources(
                        design.pipe_depth, word_bits
                    ).scaled(2 * pattern.num_fields)
                    fifo_cache[fkey] = per_face
                for c in _COMPONENTS:
                    out["pipes"][c][i] = getattr(per_face, c) * n_faces

            seg_starts.append(len(shapes))
            for tile in design.tiles:
                shapes.append(tile.shape)
                cones.append(design.cone_sides(tile))
                halos.append(design.halo_sides(tile))
                radii.append(design.radius)
                h_list.append(design.fused_depth)
                pair_cand.append(row)
                max_extent = max(max_extent, max(tile.shape))
            max_r = max(max_r, max(design.radius))
            max_h = max(max_h, design.fused_depth)
            max_scale = max(
                max_scale,
                int(narrays[row])
                * int(gang[row])
                * design.parallelism
                * LUT_PER_BRAM
                + design.parallelism * (KERNEL_BASE.lut + int(dp["lut"][row])),
            )
        check_parity_range(
            max_extent + 2 * max_r * (max_h + 1), ndim, max_scale
        )

        shape_p = np.asarray(shapes, dtype=np.int64).reshape(-1, ndim)
        cone_p = np.asarray(cones, dtype=np.int64).reshape(-1, ndim)
        halo_p = np.asarray(halos, dtype=np.int64).reshape(-1, ndim)
        r_p = np.asarray(radii, dtype=np.int64).reshape(-1, ndim)
        h_p = np.asarray(h_list, dtype=np.int64)
        pair_idx = np.asarray(pair_cand, dtype=np.int64)
        starts = np.asarray(seg_starts, dtype=np.int64)

        # Local-buffer capacity = the tile's read footprint, packed into
        # RAMB18 banks exactly as ``bram18_blocks`` does: each of the
        # ``partitions`` banks rounds up to whole (ganged) blocks.
        read_shape = shape_p + r_p * h_p[:, None] * cone_p + r_p * halo_p
        cells_p = np.prod(read_shape, axis=1)
        part_p = partitions[pair_idx]
        per_bank = np.ceil(cells_p / part_p).astype(np.int64)
        per_gang = np.ceil(per_bank / depth[pair_idx]).astype(np.int64)
        blocks_one = part_p * gang[pair_idx] * per_gang
        blocks_pair = narrays[pair_idx] * blocks_one
        blocks_sum = np.add.reduceat(blocks_pair, starts)

        out["kernels"]["ff"][idx] = (
            k_arr * (KERNEL_BASE.ff + dp["ff"]) + blocks_sum * FF_PER_BRAM
        )
        out["kernels"]["lut"][idx] = (
            k_arr * (KERNEL_BASE.lut + dp["lut"]) + blocks_sum * LUT_PER_BRAM
        )
        out["kernels"]["dsp"][idx] = k_arr * dp["dsp"]
        out["kernels"]["bram18"][idx] = blocks_sum

    kernels = ResourceColumns(**out["kernels"])
    pipes = ResourceColumns(**out["pipes"])
    total = ResourceColumns(
        **{
            c: out["kernels"][c] + out["pipes"][c]
            for c in _COMPONENTS
        }
    )
    return BatchResources(total=total, kernels=kernels, pipes=pipes)
