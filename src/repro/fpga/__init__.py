"""FPGA hardware substrate: resources, BRAM packing, II estimation."""

from repro.fpga.resources import (
    VIRTEX7_690T,
    FpgaDevice,
    ResourceVector,
)
from repro.fpga.bram import bram18_blocks, fifo_resources, local_array_blocks
from repro.fpga.flexcl import FlexCLEstimator, PipelineReport
from repro.fpga.batch import BatchResources, ResourceColumns, estimate_batch
from repro.fpga.estimator import (
    DesignResources,
    ResourceEstimator,
    estimate_resources,
)

__all__ = [
    "FpgaDevice",
    "ResourceVector",
    "VIRTEX7_690T",
    "bram18_blocks",
    "fifo_resources",
    "local_array_blocks",
    "FlexCLEstimator",
    "PipelineReport",
    "BatchResources",
    "ResourceColumns",
    "estimate_batch",
    "DesignResources",
    "ResourceEstimator",
    "estimate_resources",
]
