"""FlexCL stand-in: pipeline initiation-interval (II) estimation.

The paper obtains the stencil pipeline's II from its companion FlexCL
framework (an analytical OpenCL-on-FPGA performance model).  We cannot
run FlexCL, so this module implements the part the framework actually
consumes: given a stencil pattern and an unroll (``N_PE``) factor, it
estimates the II and pipeline depth the HLS scheduler would achieve
from first principles — loop-carried dependences and local-memory port
pressure.

Iterative stencil bodies have no loop-carried dependence across cells
(Jacobi-style double buffering), so the II is set by the number of
local-memory reads that must issue per cycle versus the available BRAM
ports; HLS widens the banking (array partitioning) until II hits 1 or
the partition limit.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import SpecificationError
from repro.stencil.pattern import StencilPattern

#: Floating-point operator latencies (cycles) at a 200 MHz 7-series clock.
FADD_LATENCY = 8
FMUL_LATENCY = 6
LOCAL_READ_LATENCY = 2
PORTS_PER_BANK = 2

#: HLS refuses to partition a tile buffer beyond this many banks.
MAX_PARTITIONS = 64


@dataclass(frozen=True)
class PipelineReport:
    """What an HLS report (or FlexCL) tells us about one kernel pipeline.

    Attributes:
        ii: initiation interval in cycles (Table 1's ``II``).
        depth: pipeline depth in cycles (fill/drain latency).
        unroll: number of processing elements ``N_PE``.
        partitions: local-memory banks required to sustain the II.
        reads_per_cycle: local reads issued per cycle at steady state.
    """

    ii: int
    depth: int
    unroll: int
    partitions: int
    reads_per_cycle: float

    @property
    def cycles_per_element(self) -> float:
        """``C_element = II / N_PE`` (the paper's Eq. 9)."""
        return self.ii / self.unroll


class FlexCLEstimator:
    """Estimates pipeline characteristics for stencil compute kernels."""

    def __init__(self, max_partitions: int = MAX_PARTITIONS):
        if max_partitions < 1:
            raise SpecificationError(
                f"max_partitions must be >= 1, got {max_partitions}"
            )
        self.max_partitions = max_partitions
        self._cache: Dict[Tuple, PipelineReport] = {}
        self._lock = threading.Lock()

    def estimate(
        self,
        pattern: StencilPattern,
        unroll: int = 1,
        partitions: Optional[int] = None,
    ) -> PipelineReport:
        """Estimate II and depth for ``pattern`` at a given unroll.

        Reports are memoized per ``(pattern, unroll, partitions)`` —
        every candidate of a DSE sweep shares the same pattern, so the
        pipeline analysis runs once per sweep instead of once per
        candidate.  The method is safe to call from worker threads.

        Args:
            pattern: the stencil update.
            unroll: number of cells processed concurrently (``N_PE``).
            partitions: force a specific banking factor; by default the
                smallest power-of-two banking that achieves II = 1 (or
                the partition cap) is chosen, mirroring HLS pragmas.

        Returns:
            A :class:`PipelineReport`.
        """
        if unroll < 1:
            raise SpecificationError(f"unroll must be >= 1, got {unroll}")
        key = (pattern.signature(), unroll, partitions)
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        report = self._estimate_uncached(pattern, unroll, partitions)
        with self._lock:
            return self._cache.setdefault(key, report)

    def _estimate_uncached(
        self,
        pattern: StencilPattern,
        unroll: int,
        partitions: Optional[int],
    ) -> PipelineReport:
        reads_per_ii = pattern.points_per_cell() * unroll
        if partitions is None:
            partitions = self._auto_partitions(reads_per_ii)
        elif partitions < 1:
            raise SpecificationError(
                f"partitions must be >= 1, got {partitions}"
            )
        ports = PORTS_PER_BANK * partitions
        ii = max(1, math.ceil(reads_per_ii / ports))
        depth = self._pipeline_depth(pattern)
        return PipelineReport(
            ii=ii,
            depth=depth,
            unroll=unroll,
            partitions=partitions,
            reads_per_cycle=reads_per_ii / ii,
        )

    def _auto_partitions(self, reads_per_ii: int) -> int:
        """Smallest power-of-two banking achieving II = 1 (capped)."""
        needed = math.ceil(reads_per_ii / PORTS_PER_BANK)
        banks = 1
        while banks < needed and banks < self.max_partitions:
            banks *= 2
        return banks

    def _pipeline_depth(self, pattern: StencilPattern) -> int:
        """Read + multiply + adder-tree critical path, in cycles."""
        max_terms = max(
            len(update.taps) + (1 if update.constant != 0.0 else 0)
            for update in pattern.updates.values()
        )
        adder_levels = max(1, math.ceil(math.log2(max(2, max_terms))))
        return (
            LOCAL_READ_LATENCY
            + FMUL_LATENCY
            + adder_levels * FADD_LATENCY
        )
