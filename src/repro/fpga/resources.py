"""FPGA resource accounting.

:class:`ResourceVector` is the four-component quantity the paper's
Table 3 reports per design — flip-flops (FF), look-up tables (LUT), DSP
slices, and 18 Kb block RAMs — with the algebra the design-space
explorer needs (addition, scaling, component-wise max, and budget
comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import ResourceError, SpecificationError

_COMPONENTS = ("ff", "lut", "dsp", "bram18")


@dataclass(frozen=True)
class ResourceVector:
    """FF/LUT/DSP/BRAM usage (or capacity) of a design or device.

    All components are non-negative integers; BRAM is counted in 18 Kb
    blocks (a 36 Kb block is two).
    """

    ff: int = 0
    lut: int = 0
    dsp: int = 0
    bram18: int = 0

    def __post_init__(self) -> None:
        for name in _COMPONENTS:
            value = getattr(self, name)
            if value < 0:
                raise SpecificationError(
                    f"Resource component {name} must be >= 0, got {value}"
                )
            object.__setattr__(self, name, int(round(value)))

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            *(getattr(self, c) + getattr(other, c) for c in _COMPONENTS)
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            *(
                max(0, getattr(self, c) - getattr(other, c))
                for c in _COMPONENTS
            )
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """Component-wise scaling (rounding up to whole units)."""
        if factor < 0:
            raise SpecificationError(f"Scale factor must be >= 0: {factor}")
        return ResourceVector(
            *(
                int(-(-getattr(self, c) * factor // 1))
                for c in _COMPONENTS
            )
        )

    def max_with(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise maximum."""
        return ResourceVector(
            *(max(getattr(self, c), getattr(other, c)) for c in _COMPONENTS)
        )

    def fits_within(self, budget: "ResourceVector") -> bool:
        """True when every component is within ``budget``."""
        return all(
            getattr(self, c) <= getattr(budget, c) for c in _COMPONENTS
        )

    def utilization(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Fractional utilization of each component of ``capacity``."""
        result: Dict[str, float] = {}
        for c in _COMPONENTS:
            cap = getattr(capacity, c)
            result[c] = getattr(self, c) / cap if cap else 0.0
        return result

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for reports and serialization)."""
        return {c: getattr(self, c) for c in _COMPONENTS}

    def components(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(name, value)`` pairs in canonical order."""
        for c in _COMPONENTS:
            yield c, getattr(self, c)

    def __str__(self) -> str:
        return (
            f"FF={self.ff} LUT={self.lut} DSP={self.dsp} "
            f"BRAM18={self.bram18}"
        )


@dataclass(frozen=True)
class FpgaDevice:
    """An FPGA part: capacities plus basic timing characteristics."""

    name: str
    capacity: ResourceVector
    #: Default kernel clock in Hz (the paper fixes 200 MHz).
    default_clock_hz: float = 200e6

    def check_fits(self, usage: ResourceVector) -> None:
        """Raise :class:`ResourceError` when ``usage`` overflows."""
        if not usage.fits_within(self.capacity):
            util = usage.utilization(self.capacity)
            over = {k: f"{v:.0%}" for k, v in util.items() if v > 1.0}
            raise ResourceError(
                f"Design does not fit on {self.name}: over budget in {over} "
                f"(usage {usage}, capacity {self.capacity})"
            )

    def headroom(self, usage: ResourceVector) -> ResourceVector:
        """Remaining capacity after placing ``usage``."""
        return self.capacity - usage


#: The Virtex-7 XC7VX690T on the Alpha Data ADM-PCIE-7V3 board the
#: paper evaluates on (Xilinx DS180 figures; BRAM in 18 Kb blocks).
VIRTEX7_690T = FpgaDevice(
    name="xc7vx690t",
    capacity=ResourceVector(ff=866_400, lut=433_200, dsp=3_600, bram18=2_940),
)
