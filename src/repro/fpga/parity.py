"""Exact-parity range guard shared by the vectorized batch engines.

The batch engines (:mod:`repro.model.batch`, :mod:`repro.fpga.batch`)
promise bitwise-identical results to their scalar counterparts.  That
promise holds only while two numeric-range invariants do:

- every integer cell count stays below ``2**52``, so ``int64 ->
  float64`` conversions (and ``ceil`` over float divisions, as in the
  BRAM packing model) round identically to CPython's
  arbitrary-precision path, and
- every ``int64`` intermediate stays below ``2**62``, so vectorized
  integer arithmetic cannot overflow where Python ints silently grow.

:func:`check_parity_range` validates conservative Python-int bounds
before any array math runs; a violation raises
:class:`BatchRangeError` and the caller falls back to the scalar
implementation — the guard affects speed, never results.
"""

from __future__ import annotations

from repro.errors import DesignSpaceError

__all__ = [
    "BatchRangeError",
    "CELLS_LIMIT",
    "INT64_LIMIT",
    "check_parity_range",
]

#: Cell counts must stay below this for ``int64 -> float64`` round
#: trips (and float-ceil divisions) to be exact.
CELLS_LIMIT = 1 << 52

#: Ceiling for every intermediate ``int64`` product/sum (overflow-free
#: with headroom below ``2**63 - 1``).
INT64_LIMIT = 1 << 62


class BatchRangeError(DesignSpaceError):
    """A candidate's geometry exceeds the exact-parity vectorized range.

    Raised before any result is produced; callers fall back to the
    scalar implementation for the whole batch.
    """


def check_parity_range(extent_bound: int, ndim: int, scale: int) -> int:
    """Validate Python-int bounds for one batch group; return the cell bound.

    Args:
        extent_bound: upper bound on any per-dimension extent appearing
            in the group's integer geometry (including cone-inflated
            and iteration-extrapolated extents).
        ndim: dimensionality (cell counts are ``extent_bound ** ndim``).
        scale: largest factor any cell count is multiplied by (or
            summed over) in ``int64`` arithmetic.

    Raises:
        BatchRangeError: when exact scalar parity cannot be guaranteed.
    """
    cells_bound = max(1, extent_bound) ** ndim
    if cells_bound >= CELLS_LIMIT or cells_bound * max(1, scale) >= INT64_LIMIT:
        raise BatchRangeError(
            f"Batch geometry out of exact-parity range: cell bound "
            f"{cells_bound} (extent {extent_bound}^{ndim}), scale {scale}"
        )
    return cells_bound
