"""Block-RAM packing model.

Maps OpenCL ``local`` arrays and pipe FIFOs onto Xilinx 18 Kb BRAM
primitives.  An 18 Kb block supports the aspect ratios 16K x 1 through
512 x 36; for a given word width the usable depth per block is the
deepest configuration whose width covers the word (wider words gang
multiple blocks side by side).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import SpecificationError
from repro.fpga.resources import ResourceVector

#: (width_bits, depth_words) configurations of one RAMB18 primitive.
_BRAM18_ASPECTS: Tuple[Tuple[int, int], ...] = (
    (1, 16384),
    (2, 8192),
    (4, 4096),
    (9, 2048),
    (18, 1024),
    (36, 512),
)

#: FIFOs at or below this many bits are mapped to SRL/LUTRAM, not BRAM.
SRL_FIFO_THRESHOLD_BITS = 1024


def _depth_per_block(word_bits: int) -> Tuple[int, int]:
    """(blocks ganged side-by-side, depth per gang) for one word width."""
    if word_bits <= 0:
        raise SpecificationError(f"word_bits must be positive: {word_bits}")
    for width, depth in _BRAM18_ASPECTS:
        if word_bits <= width:
            return 1, depth
    # Wider than 36 bits: gang ceil(word/36) blocks at 512-deep each.
    return math.ceil(word_bits / 36), 512


def bram18_blocks(num_words: int, word_bits: int, partitions: int = 1) -> int:
    """Number of 18 Kb blocks for an array of ``num_words`` words.

    Args:
        num_words: logical array depth in words.
        word_bits: word width in bits.
        partitions: cyclic/block partition factor (each bank is rounded
            up to whole blocks separately — this is why aggressive
            partitioning costs BRAM).

    Returns:
        Total RAMB18 primitives consumed.
    """
    if num_words < 0:
        raise SpecificationError(f"num_words must be >= 0: {num_words}")
    if partitions <= 0:
        raise SpecificationError(f"partitions must be positive: {partitions}")
    if num_words == 0:
        return 0
    gang, depth = _depth_per_block(word_bits)
    per_bank_words = math.ceil(num_words / partitions)
    blocks_per_bank = gang * math.ceil(per_bank_words / depth)
    return partitions * blocks_per_bank


def local_array_blocks(
    num_cells: int,
    bytes_per_cell: int,
    partitions: int = 1,
    double_buffered: bool = True,
) -> int:
    """Blocks for a tile-local data array.

    Iterative stencil kernels ping-pong between a read and a write copy
    of the tile (``double_buffered``), doubling the storage.
    """
    blocks = bram18_blocks(num_cells, bytes_per_cell * 8, partitions)
    return 2 * blocks if double_buffered else blocks


def fifo_resources(depth_words: int, word_bits: int) -> ResourceVector:
    """Resources of one pipe FIFO.

    Shallow/narrow FIFOs are implemented in shift registers (LUT+FF
    only); deeper ones consume BRAM plus a small controller.
    """
    if depth_words <= 0:
        raise SpecificationError(f"FIFO depth must be positive: {depth_words}")
    total_bits = depth_words * word_bits
    controller = ResourceVector(ff=64, lut=48, dsp=0, bram18=0)
    if total_bits <= SRL_FIFO_THRESHOLD_BITS:
        # ~1 LUT (as SRL32) per bit-lane per 32 entries, one FF per lane.
        lanes = word_bits
        srl_luts = lanes * math.ceil(depth_words / 32)
        return controller + ResourceVector(ff=lanes, lut=srl_luts)
    blocks = bram18_blocks(depth_words, word_bits)
    return controller + ResourceVector(bram18=blocks)
