"""OpenCL-on-FPGA machine model.

Models the pieces of the OpenCL execution stack the paper's framework
relies on: the board/platform description, the NDRange hierarchy,
OpenCL 2.0 pipes, burst global-memory transfers, and a small host
runtime emulation used by the functional executor and examples.
"""

from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.opencl.ndrange import NDRange, WorkGroup
from repro.opencl.pipes import Pipe, PipeClosed, PipeEmpty, PipeFull
from repro.opencl.memory import BurstModel, transfer_cycles
from repro.opencl.runtime import (
    CommandQueue,
    HostRuntime,
    KernelInstance,
    LaunchRecord,
)

__all__ = [
    "ADM_PCIE_7V3",
    "BoardSpec",
    "NDRange",
    "WorkGroup",
    "Pipe",
    "PipeClosed",
    "PipeEmpty",
    "PipeFull",
    "BurstModel",
    "transfer_cycles",
    "CommandQueue",
    "HostRuntime",
    "KernelInstance",
    "LaunchRecord",
]
