"""OpenCL 2.0 pipe semantics (bounded FIFO between kernels).

On the OpenCL-to-FPGA mapping a pipe compiles to an on-chip FIFO.  The
functional executor uses these to move boundary data between tile
kernels, exactly as the generated OpenCL code would; the timing
simulator accounts for their latency separately
(:mod:`repro.sim.pipe_sim`).

Pipes here carry numpy scalars or small arrays ("packets"); reserve/
commit semantics are simplified to blocking and non-blocking reads and
writes, which is what the generated kernels use.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, List, Optional

from repro.errors import PipeError
from repro.utils.validation import check_positive


class PipeFull(PipeError):
    """Non-blocking write attempted on a full pipe."""


class PipeEmpty(PipeError):
    """Non-blocking read attempted on an empty pipe."""


class PipeClosed(PipeError):
    """Operation attempted on a closed pipe."""


class Pipe:
    """A bounded single-producer single-consumer FIFO.

    Attributes:
        name: identifier (matches the generated OpenCL pipe symbol).
        depth: maximum number of packets resident in the FIFO.
    """

    def __init__(self, name: str, depth: int = 512):
        check_positive("depth", depth)
        self.name = name
        self.depth = int(depth)
        self._queue: Deque[Any] = deque()
        self._closed = False
        #: Lifetime statistics, used by tests and the simulator.
        self.total_writes = 0
        self.total_reads = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        """True when a write would not fit."""
        return len(self._queue) >= self.depth

    @property
    def is_empty(self) -> bool:
        """True when a read would block."""
        return not self._queue

    @property
    def closed(self) -> bool:
        """True once the producer closed the pipe."""
        return self._closed

    def write(self, packet: Any) -> None:
        """Non-blocking write; raises :class:`PipeFull` when full."""
        if self._closed:
            raise PipeClosed(f"write on closed pipe {self.name!r}")
        if self.is_full:
            raise PipeFull(
                f"pipe {self.name!r} full (depth {self.depth})"
            )
        self._queue.append(packet)
        self.total_writes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))

    def write_all(self, packets: Iterable[Any]) -> None:
        """Write a sequence of packets (raises on overflow)."""
        for packet in packets:
            self.write(packet)

    def read(self) -> Any:
        """Non-blocking read; raises :class:`PipeEmpty` when empty."""
        if self.is_empty:
            raise PipeEmpty(f"pipe {self.name!r} empty")
        self.total_reads += 1
        return self._queue.popleft()

    def read_n(self, count: int) -> List[Any]:
        """Read exactly ``count`` packets (raises if fewer available)."""
        if count < 0:
            raise PipeError(f"cannot read {count} packets")
        if count > len(self._queue):
            raise PipeEmpty(
                f"pipe {self.name!r} holds {len(self._queue)} packets, "
                f"requested {count}"
            )
        return [self.read() for _ in range(count)]

    def try_write(self, packet: Any) -> bool:
        """Write if space is available; returns success."""
        if self._closed or self.is_full:
            return False
        self.write(packet)
        return True

    def try_read(self) -> Optional[Any]:
        """Read if a packet is available, else ``None``."""
        if self.is_empty:
            return None
        return self.read()

    def close(self) -> None:
        """Mark the producer side finished (reads may still drain)."""
        self._closed = True

    def drain(self) -> List[Any]:
        """Read everything currently buffered."""
        return self.read_n(len(self._queue))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Pipe({self.name!r}, depth={self.depth}, "
            f"occupancy={len(self._queue)})"
        )
