"""Minimal host-side OpenCL runtime emulation.

Provides just enough of the host API surface — buffers, pipes, command
queues, kernel launches, and queue barriers — for the functional
executor and the examples to be structured like the OpenCL host
programs the paper's code generator emits.  Execution is immediate
(kernels are Python callables); the *temporal* behaviour is modelled
separately by :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.opencl.pipes import Pipe
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec


@dataclass
class KernelInstance:
    """A kernel registered with the runtime.

    The callable receives the runtime followed by the launch arguments,
    mirroring a kernel that can touch buffers and pipes by name.
    """

    name: str
    func: Callable[..., Any]


@dataclass(frozen=True)
class LaunchRecord:
    """One completed kernel launch (for inspection and tests)."""

    sequence: int
    kernel: str
    args: Tuple[Any, ...]


class CommandQueue:
    """An in-order command queue bound to a runtime."""

    def __init__(self, runtime: "HostRuntime", name: str = "q0"):
        self.runtime = runtime
        self.name = name
        self.launches: List[LaunchRecord] = []

    def enqueue_kernel(self, kernel_name: str, *args: Any) -> LaunchRecord:
        """Launch a kernel immediately (in-order semantics)."""
        kernel = self.runtime.get_kernel(kernel_name)
        kernel.func(self.runtime, *args)
        record = LaunchRecord(
            sequence=self.runtime.next_sequence(),
            kernel=kernel_name,
            args=args,
        )
        self.launches.append(record)
        return record

    def barrier(self) -> None:
        """Queue barrier (a no-op for immediate in-order execution)."""

    def finish(self) -> None:
        """Wait for completion (immediate execution: no-op)."""


class HostRuntime:
    """Emulated OpenCL host: buffers, pipes, kernels, queues.

    Example:
        >>> rt = HostRuntime()
        >>> import numpy as np
        >>> buf = rt.create_buffer("grid", np.zeros((4, 4), np.float32))
        >>> rt.buffer("grid") is buf
        True
    """

    def __init__(self, board: BoardSpec = ADM_PCIE_7V3):
        self.board = board
        self._buffers: Dict[str, np.ndarray] = {}
        self._pipes: Dict[str, Pipe] = {}
        self._kernels: Dict[str, KernelInstance] = {}
        self._sequence = 0

    # -- buffers -----------------------------------------------------------

    def create_buffer(self, name: str, data: np.ndarray) -> np.ndarray:
        """Allocate a device buffer initialized from host data."""
        if name in self._buffers:
            raise SimulationError(f"buffer {name!r} already exists")
        total = sum(b.nbytes for b in self._buffers.values()) + data.nbytes
        if total > self.board.ddr_bytes:
            raise SimulationError(
                f"device memory exhausted allocating {name!r} "
                f"({total} > {self.board.ddr_bytes} bytes)"
            )
        self._buffers[name] = np.array(data, copy=True)
        return self._buffers[name]

    def buffer(self, name: str) -> np.ndarray:
        """Look up a device buffer by name."""
        try:
            return self._buffers[name]
        except KeyError:
            raise SimulationError(f"unknown buffer {name!r}") from None

    def read_buffer(self, name: str) -> np.ndarray:
        """Copy a device buffer back to the host."""
        return self.buffer(name).copy()

    def release_buffer(self, name: str) -> None:
        """Free a device buffer."""
        self._buffers.pop(name, None)

    # -- pipes -------------------------------------------------------------

    def create_pipe(self, name: str, depth: int = 512) -> Pipe:
        """Create a named pipe (FIFO) connecting two kernels."""
        if name in self._pipes:
            raise SimulationError(f"pipe {name!r} already exists")
        self._pipes[name] = Pipe(name, depth)
        return self._pipes[name]

    def pipe(self, name: str) -> Pipe:
        """Look up a pipe by name."""
        try:
            return self._pipes[name]
        except KeyError:
            raise SimulationError(f"unknown pipe {name!r}") from None

    @property
    def pipes(self) -> Dict[str, Pipe]:
        """All pipes (read-only usage expected)."""
        return dict(self._pipes)

    # -- kernels and queues --------------------------------------------------

    def register_kernel(
        self, name: str, func: Callable[..., Any]
    ) -> KernelInstance:
        """Register a kernel implementation under a name."""
        if name in self._kernels:
            raise SimulationError(f"kernel {name!r} already registered")
        self._kernels[name] = KernelInstance(name=name, func=func)
        return self._kernels[name]

    def get_kernel(self, name: str) -> KernelInstance:
        """Look up a registered kernel."""
        try:
            return self._kernels[name]
        except KeyError:
            raise SimulationError(f"unknown kernel {name!r}") from None

    def create_queue(self, name: str = "q0") -> CommandQueue:
        """Create an in-order command queue."""
        return CommandQueue(self, name)

    def next_sequence(self) -> int:
        """Monotonic launch sequence number."""
        self._sequence += 1
        return self._sequence
