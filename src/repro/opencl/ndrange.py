"""NDRange / work-group / work-item hierarchy of the OpenCL model.

On the OpenCL-to-FPGA mapping (Fig. 2 of the paper), an NDRange kernel
is distributed over compute units as work-groups; each work-item is
executed on a processing element in pipelined fashion.  The framework
uses this hierarchy descriptively — the tile a kernel processes is a
work-group, and the work-items enumerate its cells — and the functional
runtime iterates it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import SpecificationError
from repro.utils.validation import check_positive_tuple


@dataclass(frozen=True)
class WorkGroup:
    """One work-group: its group id and local size."""

    group_id: Tuple[int, ...]
    local_size: Tuple[int, ...]
    global_offset: Tuple[int, ...]

    @property
    def num_items(self) -> int:
        """Work-items contained in this group."""
        total = 1
        for extent in self.local_size:
            total *= extent
        return total

    def items(self) -> Iterator[Tuple[int, ...]]:
        """Iterate global ids of the group's work-items (row-major)."""
        ndim = len(self.local_size)
        index = [0] * ndim
        while True:
            yield tuple(
                self.global_offset[d] + index[d] for d in range(ndim)
            )
            d = ndim - 1
            while d >= 0:
                index[d] += 1
                if index[d] < self.local_size[d]:
                    break
                index[d] = 0
                d -= 1
            if d < 0:
                return


@dataclass(frozen=True)
class NDRange:
    """An NDRange kernel invocation: global and work-group sizes."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]

    def __post_init__(self) -> None:
        ndim = len(self.global_size)
        object.__setattr__(
            self,
            "global_size",
            check_positive_tuple("global_size", self.global_size, ndim),
        )
        object.__setattr__(
            self,
            "local_size",
            check_positive_tuple("local_size", self.local_size, ndim),
        )
        for g, loc in zip(self.global_size, self.local_size):
            if g % loc != 0:
                raise SpecificationError(
                    f"global_size {self.global_size} not divisible by "
                    f"local_size {self.local_size}"
                )

    @property
    def ndim(self) -> int:
        """Index-space dimensionality."""
        return len(self.global_size)

    @property
    def num_groups(self) -> Tuple[int, ...]:
        """Work-group count per dimension."""
        return tuple(
            g // loc for g, loc in zip(self.global_size, self.local_size)
        )

    @property
    def total_items(self) -> int:
        """Total number of work-items."""
        return math.prod(self.global_size)

    @property
    def total_groups(self) -> int:
        """Total number of work-groups."""
        return math.prod(self.num_groups)

    def groups(self) -> Iterator[WorkGroup]:
        """Iterate all work-groups in row-major group-id order."""
        counts = self.num_groups
        ndim = self.ndim
        index = [0] * ndim
        while True:
            offset = tuple(
                index[d] * self.local_size[d] for d in range(ndim)
            )
            yield WorkGroup(
                group_id=tuple(index),
                local_size=self.local_size,
                global_offset=offset,
            )
            d = ndim - 1
            while d >= 0:
                index[d] += 1
                if index[d] < counts[d]:
                    break
                index[d] = 0
                d -= 1
            if d < 0:
                return
