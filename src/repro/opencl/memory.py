"""Global-memory burst-transfer accounting.

The paper's model (Eqs. 4–6) assumes reads and writes are done in burst
mode coupled with work-group barriers: data for one work-group is
bundled, the transfer coalesces, and when ``K`` kernels run
simultaneously the bandwidth is shared evenly among them.  This module
provides that arithmetic to both the analytical model and the
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.opencl.platform import BoardSpec


def transfer_cycles(
    size_bytes: float,
    board: BoardSpec,
    sharing_kernels: int = 1,
    burst: bool = True,
) -> float:
    """Cycles to move ``size_bytes`` to/from global memory.

    Args:
        size_bytes: payload size.
        board: platform description (bandwidth, clock, burst factor).
        sharing_kernels: ``K`` kernels splitting the bandwidth evenly.
        burst: whether the access is coalesced (burst mode).  Non-burst
            accesses see a heavily derated bandwidth.

    Returns:
        Transfer latency in kernel-clock cycles (float; callers round).
    """
    if size_bytes < 0:
        raise SpecificationError(f"size_bytes must be >= 0: {size_bytes}")
    if sharing_kernels < 1:
        raise SpecificationError(
            f"sharing_kernels must be >= 1: {sharing_kernels}"
        )
    if size_bytes == 0:
        return 0.0
    per_cycle = (
        board.effective_bytes_per_cycle
        if burst
        else board.bytes_per_cycle * 0.1
    )
    return size_bytes * sharing_kernels / per_cycle


@dataclass(frozen=True)
class BurstModel:
    """Burst-transfer model bound to one board and sharing degree."""

    board: BoardSpec
    sharing_kernels: int = 1

    def read_cycles(self, size_bytes: float) -> float:
        """Cycles for a burst read of ``size_bytes``."""
        return transfer_cycles(size_bytes, self.board, self.sharing_kernels)

    def write_cycles(self, size_bytes: float) -> float:
        """Cycles for a burst write of ``size_bytes``."""
        return transfer_cycles(size_bytes, self.board, self.sharing_kernels)

    def roundtrip_cycles(
        self, read_bytes: float, write_bytes: float
    ) -> float:
        """Read + write latency for one region (Eq. 4)."""
        return self.read_cycles(read_bytes) + self.write_cycles(write_bytes)

    def bursts_needed(self, size_bytes: float, burst_bytes: int = 4096) -> int:
        """Number of AXI bursts for a payload (diagnostics only)."""
        if burst_bytes <= 0:
            raise SpecificationError(
                f"burst_bytes must be positive: {burst_bytes}"
            )
        return math.ceil(size_bytes / burst_bytes)
