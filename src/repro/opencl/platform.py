"""Board/platform description for OpenCL-to-FPGA execution.

The paper's experiments run on an Alpha Data ADM-PCIE-7V3 board
(Virtex-7 690T, 16 GB DDR3, PCIe 3.0 x8) with all kernels clocked at
200 MHz under SDAccel 2016.2.  :data:`ADM_PCIE_7V3` captures the same
published characteristics so the model and simulator reproduce the same
bandwidth/latency trade-offs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fpga.resources import VIRTEX7_690T, FpgaDevice
from repro.utils.units import bytes_per_cycle, gib
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BoardSpec:
    """An FPGA accelerator board as seen by the OpenCL runtime.

    Attributes:
        name: board name.
        device: the FPGA part and its resource capacities.
        ddr_bytes: device-global memory capacity.
        bandwidth_bytes_per_s: peak global-memory bandwidth ``BW``.
        clock_hz: kernel clock frequency (paper: 200 MHz).
        kernel_launch_cycles: host-side latency to launch one kernel,
            expressed in kernel-clock cycles (``L_launch`` per kernel).
        launch_stagger_cycles: additional serialization delay between
            *adjacent* kernel launches in one region.  This is the
            effect the paper's analytical model deliberately omits and
            names as the source of its ~12 % underestimation.
        pipe_cycles_per_word: ``C_pipe``, cycles to move one element
            through an on-chip pipe.
        burst_efficiency: achieved fraction of peak bandwidth for
            coalesced burst transfers.
    """

    name: str
    device: FpgaDevice
    ddr_bytes: int
    bandwidth_bytes_per_s: float
    clock_hz: float = 200e6
    kernel_launch_cycles: int = 4_000
    launch_stagger_cycles: int = 600
    pipe_cycles_per_word: int = 1
    burst_efficiency: float = 0.85

    def __post_init__(self) -> None:
        check_positive("ddr_bytes", self.ddr_bytes)
        check_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_positive("clock_hz", self.clock_hz)
        check_positive("pipe_cycles_per_word", self.pipe_cycles_per_word)
        if not 0.0 < self.burst_efficiency <= 1.0:
            raise ValueError(
                f"burst_efficiency must be in (0, 1]: {self.burst_efficiency}"
            )

    @property
    def bytes_per_cycle(self) -> float:
        """Peak global-memory bytes per kernel clock cycle."""
        return bytes_per_cycle(self.bandwidth_bytes_per_s, self.clock_hz)

    @property
    def effective_bytes_per_cycle(self) -> float:
        """Burst-mode achievable bytes per cycle."""
        return self.bytes_per_cycle * self.burst_efficiency

    def with_bandwidth(self, bandwidth_bytes_per_s: float) -> "BoardSpec":
        """Copy with a different peak bandwidth (a user DSE input)."""
        return replace(self, bandwidth_bytes_per_s=bandwidth_bytes_per_s)

    def with_clock(self, clock_hz: float) -> "BoardSpec":
        """Copy with a different kernel clock."""
        return replace(self, clock_hz=clock_hz)


#: The paper's evaluation board: ADM-PCIE-7V3 (Virtex-7 690T), 16 GB
#: DDR3-1333 (two banks, ~21.3 GB/s combined peak; SDAccel platforms of
#: that era exposed ~12.8 GB/s to kernels, which we use as ``BW``).
ADM_PCIE_7V3 = BoardSpec(
    name="adm-pcie-7v3",
    device=VIRTEX7_690T,
    ddr_bytes=int(gib(16)),
    bandwidth_bytes_per_s=12.8e9,
)
