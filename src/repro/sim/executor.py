"""The simulation executor: whole-run latency for a design.

Simulates one region block with :class:`RegionBlockEngine` and scales
by the number of blocks (all blocks are geometrically identical), the
same structure as the paper's Eq. 1 — except the simulator includes the
effects the model omits (launch stagger, iteration lockstep with
neighbors, barrier waits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.fpga.flexcl import FlexCLEstimator, PipelineReport
from repro.model.predictor import LatencyBreakdown
from repro.opencl.platform import ADM_PCIE_7V3, BoardSpec
from repro.sim.engine import RegionBlockEngine, RegionBlockResult
from repro.sim.kernel import KernelPhase
from repro.tiling.design import StencilDesign

_log = obs.get_logger("sim")

Index = Tuple[int, ...]


@dataclass(frozen=True)
class SimulationResult:
    """Whole-run simulated latency for one design.

    Attributes:
        design: the simulated design.
        board: the platform simulated.
        total_cycles: end-to-end latency in kernel-clock cycles.
        breakdown: critical-kernel latency components over the full
            run (the Fig. 6 quantity).
        block: the underlying single-block simulation (timelines for
            Fig. 4-style traces).
        num_blocks: region blocks executed.
    """

    design: StencilDesign
    board: BoardSpec
    total_cycles: float
    breakdown: LatencyBreakdown
    block: RegionBlockResult
    num_blocks: int
    #: True when inter-block read prefetching was simulated; the
    #: breakdown then describes one block's anatomy, not the (shorter)
    #: pipelined total.
    prefetched: bool = False
    #: Value-execution backend the executor resolves for this design
    #: (``"numpy"`` or ``"jit"``); stamped into exported trace events
    #: so interpreted and compiled phases stay distinguishable.
    sim_backend: str = "numpy"

    @property
    def seconds(self) -> float:
        """Wall-clock at the board's kernel clock."""
        return self.total_cycles / self.board.clock_hz

    @property
    def throughput_updates_per_cycle(self) -> float:
        """Useful cell-updates per cycle (grid cells * iterations / L)."""
        useful = (
            self.design.spec.total_cells * self.design.spec.iterations
        )
        return useful / self.total_cycles if self.total_cycles else 0.0

    def kernel_breakdowns(self) -> Dict[Index, LatencyBreakdown]:
        """Per-kernel breakdowns scaled to the full run."""
        return {
            index: bd.scaled(self.num_blocks)
            for index, bd in self.block.breakdowns.items()
        }


class SimulationExecutor:
    """Runs designs on the simulated board.

    Args:
        board: the platform to simulate.
        estimator: pipeline-report estimator (FlexCL stand-in).
        backend: value-execution backend for :meth:`execute`
            (``"auto" | "numpy" | "jit"``; default: the process
            default / ``REPRO_SIM_BACKEND`` / ``"auto"``).  The
            cycle-level :meth:`run` never touches data values, but it
            stamps the resolved backend into its result and trace
            events so runs stay attributable.
    """

    def __init__(
        self,
        board: BoardSpec = ADM_PCIE_7V3,
        estimator: Optional[FlexCLEstimator] = None,
        backend: Optional[str] = None,
    ):
        self.board = board
        self.estimator = estimator or FlexCLEstimator()
        self.backend = backend

    def resolved_backend(self) -> str:
        """The concrete value-execution backend this executor uses."""
        from repro.sim import jit

        return jit.resolve_backend(self.backend)

    def execute(
        self,
        design: StencilDesign,
        state=None,
        aux=None,
        iterations: Optional[int] = None,
    ):
        """Value-level execution of ``design`` (final field grids).

        Runs on the executor's backend: the compiled jit kernel when
        available, else the numpy interpreter — bitwise-identical
        either way.  Complements :meth:`run`, which simulates latency
        without computing values.
        """
        from repro.sim.functional import run_functional

        return run_functional(
            design, state, aux, iterations, backend=self.backend
        )

    def run(
        self,
        design: StencilDesign,
        report: Optional[PipelineReport] = None,
        overlap_sharing: bool = True,
        prefetch_reads: bool = False,
    ) -> SimulationResult:
        """Simulate a design end to end.

        Args:
            design: the design to execute.
            report: pipeline report override (defaults to the FlexCL
                stand-in's estimate, matching what the model uses).
            overlap_sharing: disable interior-first latency hiding when
                False (ablation of the Section 3.1 mechanism).
            prefetch_reads: extension beyond the paper — double-buffer
                the tile footprints so the *next* block's launches and
                burst reads overlap the current block's computation.
                Blocks then pipeline in two stages (fetch | compute +
                write); the period is the longer stage.  Doubles the
                tile-buffer BRAM, which the resource estimator does not
                include by default.
        """
        if report is None:
            report = self.estimator.estimate(
                design.spec.pattern, design.unroll
            )
        with obs.span(
            "sim.run",
            design=design.describe(),
            kernels=len(design.tiles),
        ) as sim_span:
            result = self._run_instrumented(
                design, report, overlap_sharing, prefetch_reads, sim_span
            )
        return result

    def _run_instrumented(
        self,
        design: StencilDesign,
        report: PipelineReport,
        overlap_sharing: bool,
        prefetch_reads: bool,
        sim_span,
    ) -> SimulationResult:
        sim_backend = self.resolved_backend()
        engine = RegionBlockEngine(
            design, self.board, report, overlap_sharing,
            sim_backend=sim_backend,
        )
        block = engine.run()
        num_blocks = design.num_blocks()
        critical = block.breakdowns[block.critical_index]
        if prefetch_reads:
            fetch = max(
                (
                    record.end
                    for tl in block.timelines.values()
                    for record in tl.records
                    if record.phase is KernelPhase.READ
                ),
                default=0.0,
            )
            body = block.block_cycles - fetch
            # Two-stage pipeline over the blocks: first fetch fills,
            # then each further block costs the longer stage, and the
            # last body drains.
            total = (
                fetch + (num_blocks - 1) * max(body, fetch) + body
            )
        else:
            total = block.block_cycles * num_blocks
        result = SimulationResult(
            design=design,
            board=self.board,
            total_cycles=total,
            breakdown=critical.scaled(num_blocks),
            block=block,
            num_blocks=num_blocks,
            prefetched=prefetch_reads,
            sim_backend=sim_backend,
        )
        if obs.enabled():
            sim_span.set(blocks=num_blocks, total_cycles=total)
            obs.inc("sim.runs")
            obs.observe("sim.block_cycles", block.block_cycles)
            obs.set_gauge("sim.last_total_cycles", total)
            _log.debug(
                "simulated %s: %.3e cycles over %d blocks",
                design.describe(),
                total,
                num_blocks,
            )
            if obs.capture_events():
                from repro.sim.trace import simulation_chrome_events

                obs.record_chrome_events(
                    simulation_chrome_events(result, pid=obs.next_pid())
                )
        return result


def simulate(
    design: StencilDesign, board: BoardSpec = ADM_PCIE_7V3
) -> SimulationResult:
    """Convenience wrapper: simulate a design on a board."""
    return SimulationExecutor(board).run(design)
