"""Pipe halo-transfer timing.

Each fused iteration, a sharing kernel receives radius-wide halo strips
from its neighbors through pipes; the transfer costs ``C_pipe`` cycles
per element.  The generated kernels send boundary strips as they are
produced, so the *send* side overlaps the producer's computation; the
receive cost is what can stall the consumer, and only when it exceeds
the consumer's independent work (interior-first scheduling).
"""

from __future__ import annotations

from repro.opencl.platform import BoardSpec
from repro.tiling.design import StencilDesign
from repro.tiling.tile import TileInfo


def halo_transfer_cycles(
    design: StencilDesign,
    tile: TileInfo,
    iteration: int,
    board: BoardSpec,
) -> float:
    """Cycles to receive all of iteration ``i``'s halo strips."""
    cells = design.tile_share_cells(tile, iteration)
    return float(board.pipe_cycles_per_word) * cells


def peak_packets_in_flight(design: StencilDesign) -> int:
    """Largest single-face transfer, to size pipe FIFO depth."""
    return design.peak_face_transfer_cells()
