"""Cycle-approximate execution simulator (the reproduction's "testbed").

The paper measures wall-clock on a real ADM-PCIE-7V3 board; we measure
on this simulator instead.  It models the mechanisms the analytical
model abstracts — burst global-memory transfers with bandwidth shared
across kernels, per-iteration pipe halo exchanges with interior-first
latency hiding, the iteration-level lockstep between neighboring
kernels, the end-of-block barrier — **plus the sequential kernel-launch
stagger the paper's model deliberately omits** (Section 5.6 names it as
the source of the model's ~12 % underestimation).

:mod:`repro.sim.functional` executes the same designs on real numpy
data and must match the naive reference bit-for-bit; it is the
framework's correctness oracle.  :mod:`repro.sim.jit` compiles the
same execution to specialized C at runtime (``backend="jit"``),
bitwise-identical by contract and an order of magnitude faster; see
``docs/SIM.md``.
"""

from repro.sim.engine import RegionBlockEngine, RegionBlockResult
from repro.sim.kernel import KernelPhase, KernelTimeline, PhaseRecord
from repro.sim.launch import LaunchScheduler
from repro.sim.memsys import MemorySystem
from repro.sim.pipe_sim import halo_transfer_cycles
from repro.sim.executor import SimulationExecutor, SimulationResult, simulate
from repro.sim.functional import FunctionalExecutor, run_functional
from repro.sim.jit import (
    backend_report,
    resolve_backend,
    set_default_backend,
)
from repro.sim.trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "RegionBlockEngine",
    "RegionBlockResult",
    "KernelPhase",
    "KernelTimeline",
    "PhaseRecord",
    "LaunchScheduler",
    "MemorySystem",
    "halo_transfer_cycles",
    "SimulationExecutor",
    "SimulationResult",
    "simulate",
    "FunctionalExecutor",
    "run_functional",
    "backend_report",
    "resolve_backend",
    "set_default_backend",
    "to_chrome_trace",
    "write_chrome_trace",
]
