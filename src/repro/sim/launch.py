"""Kernel-launch scheduling, including the sequential stagger.

On the real SDAccel runtime, "although multiple kernels execute in
parallel, there exist a delay for the kernel launch.  In other words,
the kernels will be launched sequentially with a delay between adjacent
kernel launches" (Section 5.6).  The paper's analytical model does not
include this delay; the simulator does, which reproduces the model's
systematic underestimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.opencl.platform import BoardSpec


@dataclass(frozen=True)
class LaunchScheduler:
    """Computes per-kernel launch-completion times for one region block."""

    board: BoardSpec

    def launch_times(self, num_kernels: int) -> List[float]:
        """Cycle at which each kernel (in launch order) becomes ready.

        Kernel ``k`` is ready after the base launch latency plus ``k``
        stagger intervals: launches are issued back-to-back by the
        single host thread.
        """
        base = float(self.board.kernel_launch_cycles)
        stagger = float(self.board.launch_stagger_cycles)
        return [base + k * stagger for k in range(num_kernels)]

    def launch_order(
        self, indices: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        """Host launch order: row-major over the tile grid."""
        return sorted(indices)
