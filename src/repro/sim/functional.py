"""Functional (value-level) execution of stencil designs.

Runs a :class:`~repro.tiling.design.StencilDesign` on real numpy data,
faithfully following the generated architecture: per-tile local
buffers, fused iteration cones that shrink toward the tile, halo
exchange between sibling tiles through :class:`~repro.opencl.pipes.Pipe`
objects each fused iteration, redundant cone computation across
region-outer faces, and global-memory double buffering between fused
blocks.

Under the FROZEN and PERIODIC boundary policies the result must equal
the naive reference executor **bitwise** (same tap order, same dtype)
for every design kind — this is the framework's primary correctness
invariant and is enforced by the integration and property-based test
suites.

PERIODIC works because a tile's redundant "ghost" computations beyond
the domain edge operate on wrapped gathers of real cells, so the ghost
values it produces are exactly the wrapped cells' own values.  CLAMP is
*not* supported for tiled execution: a clamped ghost cell's recomputed
value differs from the edge cell's true update (its neighborhood
collapses onto the edge), so fused redundant computation would diverge
from the reference after the first iteration.

Halo exchange uses the standard per-dimension sequential scheme: after
computing iteration ``i``, tiles exchange radius-wide slabs dimension
by dimension, each send spanning the extents already extended by the
earlier dimensions' receives, so corner data propagates through edge
neighbors without diagonal pipes (matching the paper's pipes between
*adjacent* kernels only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import (
    BackendUnavailable,
    SimulationError,
    SpecificationError,
)
from repro.opencl.pipes import Pipe
from repro.stencil.boundary import BoundaryPolicy
from repro.stencil.reference import apply_update_interior
from repro.tiling.design import StencilDesign
from repro.tiling.tile import TileInfo
from repro.utils.grids import Box, box_from_shape, shrink_box

State = Dict[str, np.ndarray]
Index = Tuple[int, ...]

_log = obs.get_logger("sim")


@dataclass
class _TileContext:
    """Per-tile execution state within one region block."""

    tile: TileInfo
    #: Global-coordinate box of the tile's output cells.
    out_box: Box
    #: Global-coordinate box covered by the local buffers.
    buffer_box: Box
    #: Local field buffers (read footprint), keyed by field name.
    fields: State
    #: Local aux buffers.
    aux: State
    #: Box of cells currently holding up-to-date iteration values.
    valid: Box


class FunctionalExecutor:
    """Executes a design on numpy grids, matching the reference exactly.

    Args:
        design: the design to execute.
        backend: ``"auto"``, ``"numpy"``, or ``"jit"`` (default: the
            process default / ``REPRO_SIM_BACKEND`` / ``"auto"``).
            The jit backend runs the compiled C kernel from
            :mod:`repro.sim.jit` — bitwise-identical by contract —
            and silently falls back to the numpy interpreter when it
            cannot (no compiler, unsupported dtype or inputs).  The
            backend that actually ran the last :meth:`run` is
            exposed as :attr:`active_backend`; note the jit path does
            not populate :attr:`pipes` (halos move through C buffers,
            not :class:`~repro.opencl.pipes.Pipe` objects).
    """

    def __init__(
        self, design: StencilDesign, backend: Optional[str] = None
    ):
        if design.spec.boundary is BoundaryPolicy.CLAMP:
            raise SpecificationError(
                "Functional design execution supports FROZEN and PERIODIC "
                "boundaries; CLAMP ghost recomputation is inexact (see "
                "module docstring)"
            )
        for grid_extent, region_extent in zip(
            design.spec.grid_shape, design.tile_grid.region_shape
        ):
            if grid_extent % region_extent != 0:
                raise SpecificationError(
                    f"Grid {design.spec.grid_shape} not divisible by region "
                    f"{design.tile_grid.region_shape}"
                )
        self.design = design
        self.spec = design.spec
        self.pattern = design.spec.pattern
        self.periodic = design.spec.boundary is BoundaryPolicy.PERIODIC
        self.domain = box_from_shape(self.spec.grid_shape)
        self.interior = shrink_box(self.domain, self.pattern.radius)
        self.backend = backend
        #: Backend that executed the most recent :meth:`run`.
        self.active_backend = "numpy"
        #: Pipes created during the run, keyed by name (inspectable).
        self.pipes: Dict[str, Pipe] = {}

    # -- public API -----------------------------------------------------------

    def run(
        self,
        state: Optional[State] = None,
        aux: Optional[State] = None,
        iterations: Optional[int] = None,
    ) -> State:
        """Execute the design and return the final field grids.

        Args:
            state: initial fields (default: the spec's).
            aux: auxiliary inputs (default: the spec's).
            iterations: total iterations (default: the spec's ``H``).
        """
        total = self.spec.iterations if iterations is None else iterations
        compiled = self._run_compiled(state, aux, total)
        if compiled is not None:
            return compiled
        current = {
            k: v.astype(self.spec.dtype, copy=True)
            for k, v in (state or self.spec.initial_state()).items()
        }
        aux_arrays = dict(aux or self.spec.aux_state())
        done = 0
        while done < total:
            h_block = min(self.design.fused_depth, total - done)
            current = self._run_temporal_block(current, aux_arrays, h_block)
            done += h_block
        obs.inc("sim.numpy.runs")
        return current

    def _run_compiled(
        self, state: Optional[State], aux: Optional[State], total: int
    ) -> Optional[State]:
        """Try the jit backend; ``None`` means run the interpreter.

        Every :class:`~repro.errors.BackendUnavailable` is swallowed
        here (counted in ``sim.jit.fallbacks``): the jit path is an
        accelerator, never a correctness or availability risk.
        """
        from repro.sim import jit

        self.active_backend = "numpy"
        if jit.resolve_backend(self.backend) != "jit":
            return None
        try:
            result = jit.run_jit(self.design, state, aux, total)
        except BackendUnavailable as exc:
            obs.inc("sim.jit.fallbacks")
            _log.debug("jit fallback for %s: %s", self.spec.name, exc)
            return None
        self.active_backend = "jit"
        return result

    # -- block execution ----------------------------------------------------------

    def _run_temporal_block(
        self, current: State, aux: State, h_block: int
    ) -> State:
        next_state = {k: v.copy() for k, v in current.items()}
        counts = [
            g // r
            for g, r in zip(
                self.spec.grid_shape, self.design.tile_grid.region_shape
            )
        ]
        region_shape = self.design.tile_grid.region_shape
        for flat in range(math.prod(counts)):
            origin = []
            rem = flat
            for count, extent in zip(reversed(counts), reversed(region_shape)):
                origin.append((rem % count) * extent)
                rem //= count
            origin.reverse()
            self._run_region_block(
                current, next_state, aux, tuple(origin), h_block
            )
        return next_state

    def _run_region_block(
        self,
        current: State,
        next_state: State,
        aux: State,
        origin: Tuple[int, ...],
        h_block: int,
    ) -> None:
        contexts = {
            t.index: self._load_tile(current, aux, t, origin, h_block)
            for t in self.design.tiles
        }
        for i in range(1, h_block + 1):
            for ctx in contexts.values():
                self._compute_iteration(ctx, i, h_block)
            if self.design.sharing and i < h_block:
                self._exchange_halos(contexts, origin, i)
        for ctx in contexts.values():
            self._write_back(next_state, ctx)

    # -- per-tile steps ----------------------------------------------------------

    def _tile_buffer_box(
        self, tile: TileInfo, origin: Tuple[int, ...], h_block: int
    ) -> Box:
        radius = self.pattern.radius
        lo = []
        hi = []
        for d in range(self.spec.ndim):
            low_outer = tile.index[d] == 0
            high_outer = tile.index[d] == self.design.tile_grid.counts[d] - 1
            if self.design.sharing:
                low_margin = radius[d] * (h_block if low_outer else 1)
                high_margin = radius[d] * (h_block if high_outer else 1)
            else:
                low_margin = high_margin = radius[d] * h_block
            lo.append(origin[d] + tile.offset[d] - low_margin)
            hi.append(
                origin[d] + tile.offset[d] + tile.shape[d] + high_margin
            )
        box = Box(tuple(lo), tuple(hi))
        if self.periodic:
            # Virtual coordinates: ghost ranges wrap at load time.
            return box
        return box.intersect(self.domain)

    def _load_tile(
        self,
        current: State,
        aux: State,
        tile: TileInfo,
        origin: Tuple[int, ...],
        h_block: int,
    ) -> _TileContext:
        buffer_box = self._tile_buffer_box(tile, origin, h_block)
        out_box = Box(
            tuple(o + t for o, t in zip(origin, tile.offset)),
            tuple(
                o + t + s
                for o, t, s in zip(origin, tile.offset, tile.shape)
            ),
        )
        fields = {
            name: self._gather(current[name], buffer_box)
            for name in self.pattern.fields
        }
        aux_local = {
            name: self._gather(aux[name], buffer_box)
            for name in self.pattern.aux
        }
        return _TileContext(
            tile=tile,
            out_box=out_box,
            buffer_box=buffer_box,
            fields=fields,
            aux=aux_local,
            valid=buffer_box,
        )

    def _gather(self, array: np.ndarray, box: Box) -> np.ndarray:
        """Copy ``box`` out of a grid, wrapping indices when periodic."""
        if self.domain.contains_box(box):
            return array[box.slices()].copy()
        index_vectors = [
            np.arange(lo, hi) % extent
            for lo, hi, extent in zip(
                box.lo, box.hi, self.spec.grid_shape
            )
        ]
        return array[np.ix_(*index_vectors)].copy()

    def _footprint_box(
        self, ctx: _TileContext, iteration: int, h_block: int
    ) -> Box:
        radius = self.pattern.radius
        remaining = h_block - iteration
        sides_lo = []
        sides_hi = []
        counts = self.design.tile_grid.counts
        for d in range(self.spec.ndim):
            low_outer = ctx.tile.index[d] == 0
            high_outer = ctx.tile.index[d] == counts[d] - 1
            if self.design.sharing:
                grow_lo = radius[d] * remaining if low_outer else 0
                grow_hi = radius[d] * remaining if high_outer else 0
            else:
                grow_lo = grow_hi = radius[d] * remaining
            sides_lo.append(ctx.out_box.lo[d] - grow_lo)
            sides_hi.append(ctx.out_box.hi[d] + grow_hi)
        box = Box(tuple(sides_lo), tuple(sides_hi))
        if self.periodic:
            return box
        return box.intersect(self.domain)

    def _compute_iteration(
        self, ctx: _TileContext, iteration: int, h_block: int
    ) -> None:
        footprint = self._footprint_box(ctx, iteration, h_block)
        computed = (
            footprint
            if self.periodic
            else footprint.intersect(self.interior)
        )
        new_fields = {k: v.copy() for k, v in ctx.fields.items()}
        if not computed.is_empty:
            # Shift global coordinates into the local buffer frame.
            local_box = Box(
                computed.lo, computed.hi
            ).translate(tuple(-o for o in ctx.buffer_box.lo))
            for fname in self.pattern.fields:
                update = self.pattern.updates[fname]
                new_fields[fname][local_box.slices()] = (
                    apply_update_interior(
                        update,
                        ctx.fields,
                        ctx.aux,
                        local_box,
                        self.spec.dtype,
                    )
                )
        ctx.fields = new_fields
        ctx.valid = footprint

    def _write_back(self, next_state: State, ctx: _TileContext) -> None:
        local_box = ctx.out_box.translate(
            tuple(-o for o in ctx.buffer_box.lo)
        )
        for fname in self.pattern.fields:
            next_state[fname][ctx.out_box.slices()] = ctx.fields[fname][
                local_box.slices()
            ]

    # -- halo exchange ------------------------------------------------------------

    def _exchange_halos(
        self,
        contexts: Dict[Index, _TileContext],
        origin: Tuple[int, ...],
        iteration: int,
    ) -> None:
        """Per-dimension sequential halo exchange through pipes.

        Dimensions are exchanged in ascending order.  A slab sent across
        a dim-``d`` face spans, in every transverse dimension ``t``, the
        sender's computed footprint — extended across its shared sides
        by the halos already received in dimensions ``t < d`` of this
        round.  This is the classic corner-propagation scheme: diagonal
        data reaches its destination through a chain of face neighbors.
        """
        for d in range(self.spec.ndim):
            transfers: List[Tuple[_TileContext, _TileContext, Box]] = []
            for low, high, dim in self.design.tile_grid.neighbors():
                if dim != d:
                    continue
                r = self.pattern.radius[d]
                if r == 0:
                    continue
                ctx_low = contexts[low.index]
                ctx_high = contexts[high.index]
                face = origin[d] + high.offset[d]
                # Low tile sends its top slab up; high tile sends its
                # bottom slab down.
                transfers.append(
                    (ctx_low, ctx_high, self._slab(ctx_low, d, face - r, r))
                )
                transfers.append(
                    (ctx_high, ctx_low, self._slab(ctx_high, d, face, r))
                )
            for src, dst, slab in transfers:
                self._send_through_pipe(src, dst, slab, d, iteration)

    def _slab(
        self, src: _TileContext, dim: int, start: int, width: int
    ) -> Box:
        """The slab ``src`` contributes across a face in ``dim``.

        Transverse extents follow ``src``'s computed footprint
        (``src.valid``), widened by one radius across shared sides of
        dimensions already exchanged this round (``t < dim``), where the
        received halos are guaranteed present in ``src``'s buffer.
        """
        counts = self.design.tile_grid.counts
        radius = self.pattern.radius
        lo = list(src.valid.lo)
        hi = list(src.valid.hi)
        for t in range(dim):
            low_shared = src.tile.index[t] > 0
            high_shared = src.tile.index[t] < counts[t] - 1
            if low_shared:
                lo[t] -= radius[t]
            if high_shared:
                hi[t] += radius[t]
        lo[dim] = start
        hi[dim] = start + width
        return Box(tuple(lo), tuple(hi)).intersect(src.buffer_box)

    def _send_through_pipe(
        self,
        src: _TileContext,
        dst: _TileContext,
        slab: Box,
        dim: int,
        iteration: int,
    ) -> None:
        region = slab.intersect(dst.buffer_box)
        if region.is_empty:
            return
        name = (
            f"pipe_{_fmt(src.tile.index)}_to_{_fmt(dst.tile.index)}_d{dim}"
        )
        pipe = self.pipes.get(name)
        if pipe is None:
            pipe = Pipe(name, depth=self.design.pipe_depth)
            self.pipes[name] = pipe
        src_box = region.translate(tuple(-o for o in src.buffer_box.lo))
        dst_box = region.translate(tuple(-o for o in dst.buffer_box.lo))
        for fname in self.pattern.fields:
            payload = src.fields[fname][src_box.slices()].copy()
            pipe.write((iteration, fname, payload))
            tag, recv_field, received = pipe.read()
            if tag != iteration or recv_field != fname:
                raise SimulationError(
                    f"Pipe {name!r} delivered out-of-order packet"
                )
            dst.fields[fname][dst_box.slices()] = received


def _fmt(index: Index) -> str:
    return "x".join(str(i) for i in index)


def run_functional(
    design: StencilDesign,
    state: Optional[State] = None,
    aux: Optional[State] = None,
    iterations: Optional[int] = None,
    backend: Optional[str] = None,
) -> State:
    """Convenience wrapper around :class:`FunctionalExecutor`."""
    return FunctionalExecutor(design, backend=backend).run(
        state, aux, iterations
    )
