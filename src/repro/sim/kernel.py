"""Per-kernel timeline records produced by the simulator.

A :class:`KernelTimeline` is the simulated analogue of the execution
traces SDAccel's dynamic profiler draws (and of the paper's Fig. 4):
for one kernel in one region block, the sequence of phases with start
and end cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class KernelPhase(enum.Enum):
    """Phases of a kernel's execution within one region block."""

    LAUNCH = "launch"
    READ = "read"
    COMPUTE = "compute"
    PIPE_WAIT = "pipe-wait"
    WRITE = "write"
    BARRIER_WAIT = "barrier-wait"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PhaseRecord:
    """One contiguous phase occupancy ``[start, end)`` in cycles."""

    phase: KernelPhase
    start: float
    end: float
    #: Fused iteration the phase belongs to (0 = outside iterations).
    iteration: int = 0

    @property
    def duration(self) -> float:
        """Phase length in cycles."""
        return self.end - self.start


@dataclass
class KernelTimeline:
    """The full simulated timeline of one kernel in one region block."""

    kernel_index: Tuple[int, ...]
    records: List[PhaseRecord] = field(default_factory=list)

    def add(
        self,
        phase: KernelPhase,
        start: float,
        end: float,
        iteration: int = 0,
    ) -> None:
        """Append a phase record (zero-length records are dropped)."""
        if end > start:
            self.records.append(PhaseRecord(phase, start, end, iteration))

    @property
    def start(self) -> float:
        """First cycle of activity."""
        return min((r.start for r in self.records), default=0.0)

    @property
    def end(self) -> float:
        """Last cycle of activity."""
        return max((r.end for r in self.records), default=0.0)

    def phase_totals(self) -> Dict[KernelPhase, float]:
        """Total cycles spent per phase."""
        totals: Dict[KernelPhase, float] = {p: 0.0 for p in KernelPhase}
        for record in self.records:
            totals[record.phase] += record.duration
        return totals

    def time_in(self, phase: KernelPhase) -> float:
        """Total cycles spent in one phase."""
        return self.phase_totals()[phase]
