"""C99 lowering of a :class:`StencilDesign` for the JIT backend.

:func:`generate_kernel_source` emits one self-contained translation
unit specialized to a single (design, dtype) pair: the tile geometry,
fused cone depths, tap offsets, and coefficients are all baked in as
compile-time constants, leaving only the buffer strides (which depend
on the clipped per-region buffer boxes) to runtime arithmetic.

The generated code is a line-for-line transliteration of
:class:`repro.sim.functional.FunctionalExecutor` — same temporal
blocks, same buffer boxes, same shrinking fusion cones, same
per-dimension sequential halo exchange, and crucially the same
floating-point operation order as
:func:`repro.stencil.reference.apply_update_interior`: per output cell
the accumulator starts at the update constant and adds one tap at a
time in declaration order, every operation rounded in the spec dtype.
Together with the ``-ffp-contract=off`` compile flag (no FMA fusion)
this makes the compiled kernel **bitwise identical** to the numpy
interpreter, which is the backend's correctness contract.

What cannot be lowered (and why) is reported by
:func:`unsupported_reason`:

- CLAMP boundaries — tiled ghost recomputation is inexact there, the
  numpy interpreter rejects them too (see :mod:`repro.sim.functional`);
- dtypes other than float32/float64 — no C scalar type matches
  numpy's rounding for them.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import SpecificationError
from repro.stencil.boundary import BoundaryPolicy
from repro.tiling.design import StencilDesign

#: Bumped whenever the emitted C changes; part of every cache key so
#: stale shared objects can never be loaded by a newer codegen.
CODEGEN_VERSION = 1

#: Name of the exported entry point in the compiled shared object.
KERNEL_ENTRY = "repro_jit_run"

#: C declaration of the entry point, consumed by ``ffi.cdef`` and kept
#: next to the code that emits the definition.
KERNEL_CDEF = (
    "long long repro_jit_run(void **fields, void **aux, long long total);"
)

#: numpy dtype name -> C scalar type.
_CTYPES = {"float32": "float", "float64": "double"}


def unsupported_reason(
    design: StencilDesign, dtype: np.dtype
) -> Optional[str]:
    """Why this design cannot be JIT-compiled, or ``None`` if it can.

    Mirrors the constraints the numpy interpreter enforces plus the
    JIT's own dtype restriction; callers use a non-``None`` answer to
    fall back to the interpreter instead of raising.
    """
    dtype = np.dtype(dtype)
    if dtype.name not in _CTYPES:
        return (
            f"dtype {dtype.name} has no bitwise-matching C scalar type "
            "(supported: float32, float64)"
        )
    if design.spec.boundary is BoundaryPolicy.CLAMP:
        return "CLAMP boundaries are interpreter-only (inexact ghosts)"
    for grid_extent, region_extent in zip(
        design.spec.grid_shape, design.tile_grid.region_shape
    ):
        if grid_extent % region_extent != 0:
            return (
                f"grid {design.spec.grid_shape} not divisible by region "
                f"{design.tile_grid.region_shape}"
            )
    return None


def _real_literal(value: float, dtype: np.dtype) -> str:
    """Exact C99 hex-float literal for ``value`` rounded to ``dtype``."""
    scalar = dtype.type(value)
    if not np.isfinite(scalar):
        raise SpecificationError(
            f"Cannot lower non-finite coefficient {value!r} to C"
        )
    text = float(scalar).hex()
    return text + "f" if dtype.name == "float32" else text


def _int_array(name: str, values, per_row: Optional[int] = None) -> str:
    """A ``static const long long`` array (1-D or 2-D) initializer."""
    values = list(values)
    if per_row is None:
        body = ", ".join(str(int(v)) for v in values)
        return (
            f"static const long long {name}[{max(len(values), 1)}] = "
            f"{{{body or '0'}}};"
        )
    rows = ", ".join(
        "{" + ", ".join(str(int(v)) for v in row) + "}" for row in values
    )
    return (
        f"static const long long {name}[{max(len(values), 1)}]"
        f"[{per_row}] = {{{rows or '{0}'}}};"
    )


def _tap_source_expr(design: StencilDesign, source: str) -> str:
    """Buffer-pointer expression for a tap's source array."""
    pattern = design.spec.pattern
    if source in pattern.aux:
        return f"T->aux[{pattern.aux.index(source)}]"
    return f"cur_{pattern.fields.index(source)}"


def _update_body(design: StencilDesign, dtype: np.dtype) -> List[str]:
    """The per-cell tap accumulation, one ``acc`` per field.

    Reads only the ``cur`` buffers and writes only ``nxt``, so field
    update order within a cell is free; the *tap* order inside each
    field follows declaration order exactly, matching
    ``apply_update_interior``.
    """
    pattern = design.spec.pattern
    lines: List[str] = []
    for fi, fname in enumerate(pattern.fields):
        update = pattern.updates[fname]
        lines.append(
            f"REAL acc_{fi} = {_real_literal(update.constant, dtype)};"
        )
        for ti, tap in enumerate(update.taps):
            src = _tap_source_expr(design, tap.source)
            term = f"{src}[off + toff_{fi}_{ti}]"
            if tap.coeff == 1.0:
                lines.append(f"acc_{fi} += {term};")
            else:
                lines.append(
                    f"acc_{fi} += {_real_literal(tap.coeff, dtype)} "
                    f"* {term};"
                )
    for fi in range(len(pattern.fields)):
        lines.append(f"nxt_{fi}[off] = acc_{fi};")
    return lines


def _tap_offset_decls(design: StencilDesign) -> List[str]:
    """Per-tap linear buffer offsets from the tile's runtime strides."""
    pattern = design.spec.pattern
    ndim = design.spec.ndim
    lines: List[str] = []
    for fi, fname in enumerate(pattern.fields):
        for ti, tap in enumerate(pattern.updates[fname].taps):
            terms = [
                f"({tap.offset[d]}) * s{d}"
                for d in range(ndim)
                if tap.offset[d] != 0
            ]
            expr = " + ".join(terms) if terms else "0"
            lines.append(f"const long long toff_{fi}_{ti} = {expr};")
    return lines


def _compute_loop(design: StencilDesign, dtype: np.dtype) -> str:
    """The nested loop over the computed box, inner dimension tight."""
    ndim = design.spec.ndim
    lines: List[str] = []
    indent = "        "
    for d in range(ndim):
        lines.append(f"{indent}const long long s{d} = T->stride[{d}];")
    for fi in range(len(design.spec.pattern.fields)):
        lines.append(
            f"{indent}const REAL *cur_{fi} = T->cur[{fi}]; "
            f"REAL *nxt_{fi} = T->nxt[{fi}];"
        )
    for line in _tap_offset_decls(design):
        lines.append(indent + line)
    # Outer loops over every dimension but the last.
    for d in range(ndim - 1):
        pad = indent + "    " * d
        lines.append(
            f"{pad}for (long long i{d} = clo[{d}]; i{d} < chi[{d}]; "
            f"++i{d}) {{"
        )
    pad = indent + "    " * (ndim - 1)
    base_terms = [f"(i{d} - T->blo[{d}]) * s{d}" for d in range(ndim - 1)]
    base_terms.append(f"(clo[{ndim - 1}] - T->blo[{ndim - 1}])")
    lines.append(f"{pad}long long off = {' + '.join(base_terms)};")
    last = ndim - 1
    lines.append(
        f"{pad}for (long long i{last} = clo[{last}]; i{last} < "
        f"chi[{last}]; ++i{last}, ++off) {{"
    )
    for line in _update_body(design, dtype):
        lines.append(pad + "    " + line)
    lines.append(pad + "}")
    for d in range(ndim - 2, -1, -1):
        lines.append(indent + "    " * d + "}")
    return "\n".join(lines)


def generate_kernel_source(
    design: StencilDesign, dtype: Optional[np.dtype] = None
) -> str:
    """Emit the full C99 translation unit for ``design``.

    Raises :class:`SpecificationError` when the design cannot be
    lowered; call :func:`unsupported_reason` first to fall back
    gracefully instead.
    """
    dtype = np.dtype(design.spec.dtype if dtype is None else dtype)
    reason = unsupported_reason(design, dtype)
    if reason is not None:
        raise SpecificationError(f"Cannot JIT design: {reason}")
    spec = design.spec
    pattern = spec.pattern
    ndim = spec.ndim
    radius = pattern.radius
    tiles = design.tiles
    counts = design.tile_grid.counts
    region = design.tile_grid.region_shape
    hmax = design.fused_depth
    periodic = spec.boundary is BoundaryPolicy.PERIODIC
    sharing = design.sharing

    grid = spec.grid_shape
    gstride = [0] * ndim
    gstride[ndim - 1] = 1
    for d in range(ndim - 2, -1, -1):
        gstride[d] = gstride[d + 1] * grid[d + 1]
    gcells = math.prod(grid)
    rcounts = [g // r for g, r in zip(grid, region)]
    # Interior under FROZEN: the domain shrunk by the radius, clamped.
    int_lo = [radius[d] for d in range(ndim)]
    int_hi = [max(int_lo[d], grid[d] - radius[d]) for d in range(ndim)]
    # Largest possible local buffer across tiles/regions/blocks.
    buf_cells = max(
        math.prod(w + 2 * r * hmax for w, r in zip(t.shape, radius))
        for t in tiles
    )
    # Halo pairs in the exact order the interpreter builds transfers:
    # neighbors() order, zero-radius dimensions skipped.
    pairs = [
        (tiles.index(low), tiles.index(high), d, high.offset[d])
        for low, high, d in design.tile_grid.neighbors()
        if radius[d] > 0
    ]
    nfields = len(pattern.fields)
    naux = len(pattern.aux)

    consts = [
        f"#define NDIM {ndim}",
        f"#define NFIELDS {nfields}",
        f"#define NAUX {naux}",
        f"#define NAUXP {max(naux, 1)}",
        f"#define NTILES {len(tiles)}",
        f"#define NPAIRS {len(pairs)}",
        f"#define HMAX {hmax}",
        f"#define SHARING {1 if sharing else 0}",
        f"#define PERIODIC {1 if periodic else 0}",
        f"#define GCELLS {gcells}LL",
        f"#define BUF_CELLS {buf_cells}LL",
        _int_array("GRID", grid),
        _int_array("GSTRIDE", gstride),
        _int_array("RADIUS", radius),
        _int_array("REGION", region),
        _int_array("RCOUNTS", rcounts),
        _int_array("TCOUNTS", counts),
        _int_array("INTLO", int_lo),
        _int_array("INTHI", int_hi),
        _int_array("TILE_OFF", [t.offset for t in tiles], ndim),
        _int_array("TILE_SHAPE", [t.shape for t in tiles], ndim),
        _int_array(
            "T_LOW_OUTER",
            [[1 if t.index[d] == 0 else 0 for d in range(ndim)]
             for t in tiles],
            ndim,
        ),
        _int_array(
            "T_HIGH_OUTER",
            [[1 if t.index[d] == counts[d] - 1 else 0 for d in range(ndim)]
             for t in tiles],
            ndim,
        ),
        _int_array("PAIR_LOW", [p[0] for p in pairs]),
        _int_array("PAIR_HIGH", [p[1] for p in pairs]),
        _int_array("PAIR_DIM", [p[2] for p in pairs]),
        _int_array("PAIR_FACE", [p[3] for p in pairs]),
    ]

    source = _TEMPLATE.format(
        codegen_version=CODEGEN_VERSION,
        design_sig=str(design.signature()),
        dtype=dtype.name,
        real=_CTYPES[dtype.name],
        constants="\n".join(consts),
        compute_loop=_compute_loop(design, dtype),
    )
    return source


_TEMPLATE = r"""/* Generated by repro.sim.jit.codegen v{codegen_version}.
 * design: {design_sig}
 * dtype: {dtype}
 *
 * Bitwise-parity transliteration of repro.sim.functional; must be
 * compiled with -ffp-contract=off and without -ffast-math.
 */
#include <stdlib.h>
#include <string.h>

typedef {real} REAL;

{constants}

static long long imax(long long a, long long b) {{ return a > b ? a : b; }}
static long long imin(long long a, long long b) {{ return a < b ? a : b; }}

/* Box.intersect semantics: lo' = max(lo), hi' = max(lo', min(hi)). */
static void box_isect(long long *lo, long long *hi,
                      const long long *olo, const long long *ohi) {{
    for (int d = 0; d < NDIM; ++d) {{
        lo[d] = imax(lo[d], olo[d]);
        hi[d] = imax(lo[d], imin(hi[d], ohi[d]));
    }}
}}

static int box_empty(const long long *lo, const long long *hi) {{
    for (int d = 0; d < NDIM; ++d)
        if (hi[d] <= lo[d]) return 1;
    return 0;
}}

#if PERIODIC
static long long wrapmod(long long v, long long m) {{
    long long r = v % m;
    return r < 0 ? r + m : r;
}}
#endif

typedef struct {{
    int id;
    long long blo[NDIM], bhi[NDIM];   /* buffer box (global coords) */
    long long stride[NDIM];
    long long bcells;
    long long olo[NDIM], ohi[NDIM];   /* output box */
    long long vlo[NDIM], vhi[NDIM];   /* valid (computed) box */
    REAL *cur[NFIELDS], *nxt[NFIELDS];
    REAL *aux[NAUXP];
}} Tile;

/* Copy global box [lo,hi) into a tile buffer anchored at blo. */
static void gather_box(const REAL *g, REAL *buf,
                       const long long *lo, const long long *hi,
                       const long long *blo, const long long *bs) {{
    long long idx[NDIM];
    if (box_empty(lo, hi)) return;
    for (int d = 0; d < NDIM; ++d) idx[d] = lo[d];
    for (;;) {{
        long long boff = 0;
        for (int d = 0; d < NDIM; ++d)
            boff += (idx[d] - blo[d]) * bs[d];
#if PERIODIC
        {{
            long long gbase = 0;
            for (int d = 0; d + 1 < NDIM; ++d)
                gbase += wrapmod(idx[d], GRID[d]) * GSTRIDE[d];
            for (long long j = lo[NDIM - 1]; j < hi[NDIM - 1]; ++j)
                buf[boff + (j - lo[NDIM - 1])] =
                    g[gbase + wrapmod(j, GRID[NDIM - 1])];
        }}
#else
        {{
            long long gbase = 0;
            for (int d = 0; d < NDIM; ++d)
                gbase += idx[d] * GSTRIDE[d];
            memcpy(buf + boff, g + gbase,
                   (size_t)(hi[NDIM - 1] - lo[NDIM - 1]) * sizeof(REAL));
        }}
#endif
        {{
            int d = NDIM - 2;
            for (; d >= 0; --d) {{
                if (++idx[d] < hi[d]) break;
                idx[d] = lo[d];
            }}
            if (d < 0) break;
        }}
    }}
}}

/* Copy a tile-buffer box back into a global array (box in-domain). */
static void scatter_box(const REAL *buf, REAL *g,
                        const long long *lo, const long long *hi,
                        const long long *blo, const long long *bs) {{
    long long idx[NDIM];
    if (box_empty(lo, hi)) return;
    for (int d = 0; d < NDIM; ++d) idx[d] = lo[d];
    for (;;) {{
        long long boff = 0, gbase = 0;
        for (int d = 0; d < NDIM; ++d) {{
            boff += (idx[d] - blo[d]) * bs[d];
            gbase += idx[d] * GSTRIDE[d];
        }}
        memcpy(g + gbase, buf + boff,
               (size_t)(hi[NDIM - 1] - lo[NDIM - 1]) * sizeof(REAL));
        {{
            int d = NDIM - 2;
            for (; d >= 0; --d) {{
                if (++idx[d] < hi[d]) break;
                idx[d] = lo[d];
            }}
            if (d < 0) break;
        }}
    }}
}}

/* Copy box [lo,hi) between two tile buffers (halo delivery). */
static void copy_box(const REAL *src, const long long *sblo,
                     const long long *sbs, REAL *dst,
                     const long long *dblo, const long long *dbs,
                     const long long *lo, const long long *hi) {{
    long long idx[NDIM];
    if (box_empty(lo, hi)) return;
    for (int d = 0; d < NDIM; ++d) idx[d] = lo[d];
    for (;;) {{
        long long soff = 0, doff = 0;
        for (int d = 0; d < NDIM; ++d) {{
            soff += (idx[d] - sblo[d]) * sbs[d];
            doff += (idx[d] - dblo[d]) * dbs[d];
        }}
        memcpy(dst + doff, src + soff,
               (size_t)(hi[NDIM - 1] - lo[NDIM - 1]) * sizeof(REAL));
        {{
            int d = NDIM - 2;
            for (; d >= 0; --d) {{
                if (++idx[d] < hi[d]) break;
                idx[d] = lo[d];
            }}
            if (d < 0) break;
        }}
    }}
}}

/* One fused iteration on one tile: footprint -> computed -> taps. */
static void update_tile(Tile *T, int iter, int h) {{
    long long flo[NDIM], fhi[NDIM], clo[NDIM], chi[NDIM];
    long long rem = (long long)(h - iter);
    for (int d = 0; d < NDIM; ++d) {{
        long long grow_lo, grow_hi;
#if SHARING
        grow_lo = T_LOW_OUTER[T->id][d] ? RADIUS[d] * rem : 0;
        grow_hi = T_HIGH_OUTER[T->id][d] ? RADIUS[d] * rem : 0;
#else
        grow_lo = grow_hi = RADIUS[d] * rem;
#endif
        flo[d] = T->olo[d] - grow_lo;
        fhi[d] = T->ohi[d] + grow_hi;
    }}
#if !PERIODIC
    for (int d = 0; d < NDIM; ++d) {{
        flo[d] = imax(flo[d], 0);
        fhi[d] = imax(flo[d], imin(fhi[d], GRID[d]));
    }}
#endif
    for (int d = 0; d < NDIM; ++d) {{
        clo[d] = flo[d];
        chi[d] = fhi[d];
    }}
#if !PERIODIC
    box_isect(clo, chi, INTLO, INTHI);
#endif
    for (int f = 0; f < NFIELDS; ++f)
        memcpy(T->nxt[f], T->cur[f], (size_t)T->bcells * sizeof(REAL));
    if (!box_empty(clo, chi)) {{
{compute_loop}
    }}
    for (int f = 0; f < NFIELDS; ++f) {{
        REAL *tmp = T->cur[f];
        T->cur[f] = T->nxt[f];
        T->nxt[f] = tmp;
    }}
    for (int d = 0; d < NDIM; ++d) {{
        T->vlo[d] = flo[d];
        T->vhi[d] = fhi[d];
    }}
}}

#if SHARING && NPAIRS > 0
/* One directed halo transfer across a dim-`dd` face at `start`. */
static void transfer(Tile *src, Tile *dst, int dd, long long start) {{
    long long lo[NDIM], hi[NDIM];
    for (int t = 0; t < NDIM; ++t) {{
        lo[t] = src->vlo[t];
        hi[t] = src->vhi[t];
    }}
    /* Transverse extents widen across shared sides of dims already
     * exchanged this round (t < dd). */
    for (int t = 0; t < dd; ++t) {{
        if (!T_LOW_OUTER[src->id][t]) lo[t] -= RADIUS[t];
        if (!T_HIGH_OUTER[src->id][t]) hi[t] += RADIUS[t];
    }}
    lo[dd] = start;
    hi[dd] = start + RADIUS[dd];
    box_isect(lo, hi, src->blo, src->bhi);
    box_isect(lo, hi, dst->blo, dst->bhi);
    if (box_empty(lo, hi)) return;
    for (int f = 0; f < NFIELDS; ++f)
        copy_box(src->cur[f], src->blo, src->stride,
                 dst->cur[f], dst->blo, dst->stride, lo, hi);
}}

/* Per-dimension sequential exchange, same transfer order as the
 * interpreter: neighbors() order, low->high then high->low. */
static void exchange(Tile *tiles, const long long *origin) {{
    for (int d = 0; d < NDIM; ++d) {{
        for (int p = 0; p < NPAIRS; ++p) {{
            if (PAIR_DIM[p] != d) continue;
            Tile *lowt = &tiles[PAIR_LOW[p]];
            Tile *hight = &tiles[PAIR_HIGH[p]];
            long long face = origin[d] + PAIR_FACE[p];
            transfer(lowt, hight, d, face - RADIUS[d]);
            transfer(hight, lowt, d, face);
        }}
    }}
}}
#endif

/* One region block: load tiles, run h fused iterations, write back. */
static void run_region(REAL **cur, REAL **nxt, REAL **aux,
                       const long long *origin, int h, REAL *slab) {{
    Tile tiles[NTILES];
    for (int t = 0; t < NTILES; ++t) {{
        Tile *T = &tiles[t];
        T->id = t;
        for (int d = 0; d < NDIM; ++d) {{
            long long lm, hm;
#if SHARING
            lm = RADIUS[d] * (T_LOW_OUTER[t][d] ? h : 1);
            hm = RADIUS[d] * (T_HIGH_OUTER[t][d] ? h : 1);
#else
            lm = hm = RADIUS[d] * (long long)h;
#endif
            T->blo[d] = origin[d] + TILE_OFF[t][d] - lm;
            T->bhi[d] = origin[d] + TILE_OFF[t][d] + TILE_SHAPE[t][d] + hm;
        }}
#if !PERIODIC
        for (int d = 0; d < NDIM; ++d) {{
            T->blo[d] = imax(T->blo[d], 0);
            T->bhi[d] = imax(T->blo[d], imin(T->bhi[d], GRID[d]));
        }}
#endif
        T->stride[NDIM - 1] = 1;
        for (int d = NDIM - 2; d >= 0; --d)
            T->stride[d] =
                T->stride[d + 1] * (T->bhi[d + 1] - T->blo[d + 1]);
        T->bcells = T->stride[0] * (T->bhi[0] - T->blo[0]);
        for (int d = 0; d < NDIM; ++d) {{
            T->olo[d] = origin[d] + TILE_OFF[t][d];
            T->ohi[d] = T->olo[d] + TILE_SHAPE[t][d];
            T->vlo[d] = T->blo[d];
            T->vhi[d] = T->bhi[d];
        }}
        REAL *base = slab + (long long)t * (2 * NFIELDS + NAUX) * BUF_CELLS;
        for (int f = 0; f < NFIELDS; ++f) {{
            T->cur[f] = base + (long long)(2 * f) * BUF_CELLS;
            T->nxt[f] = base + (long long)(2 * f + 1) * BUF_CELLS;
            gather_box(cur[f], T->cur[f], T->blo, T->bhi, T->blo,
                       T->stride);
        }}
        for (int a = 0; a < NAUX; ++a) {{
            T->aux[a] = base + (long long)(2 * NFIELDS + a) * BUF_CELLS;
            gather_box(aux[a], T->aux[a], T->blo, T->bhi, T->blo,
                       T->stride);
        }}
    }}
    for (int i = 1; i <= h; ++i) {{
        for (int t = 0; t < NTILES; ++t)
            update_tile(&tiles[t], i, h);
#if SHARING && NPAIRS > 0
        if (i < h) exchange(tiles, origin);
#endif
    }}
    for (int t = 0; t < NTILES; ++t)
        for (int f = 0; f < NFIELDS; ++f)
            scatter_box(tiles[t].cur[f], nxt[f], tiles[t].olo,
                        tiles[t].ohi, tiles[t].blo, tiles[t].stride);
}}

/* Entry point: run `total` iterations in place on `fields`.
 * fields/aux are C-contiguous GRID-shaped arrays of REAL.
 * Returns 0 on success, -1 on allocation failure. */
long long repro_jit_run(void **fields, void **aux, long long total) {{
    REAL *cur_g[NFIELDS], *nxt_g[NFIELDS];
    REAL *aux_g[NAUXP];
    long long done = 0;
    size_t slab_cells =
        (size_t)NTILES * (2 * NFIELDS + NAUX) * (size_t)BUF_CELLS;
    size_t scratch_cells = (size_t)NFIELDS * (size_t)GCELLS;
    REAL *mem = (REAL *)malloc(
        (slab_cells + scratch_cells) * sizeof(REAL));
    if (mem == NULL) return -1;
    for (int f = 0; f < NFIELDS; ++f) {{
        cur_g[f] = (REAL *)fields[f];
        nxt_g[f] = mem + slab_cells + (size_t)f * (size_t)GCELLS;
    }}
    for (int a = 0; a < NAUX; ++a) aux_g[a] = (REAL *)aux[a];
    while (done < total) {{
        int h = (int)imin(HMAX, total - done);
        long long origin[NDIM];
        long long nregions = 1;
        for (int d = 0; d < NDIM; ++d) nregions *= RCOUNTS[d];
        for (int f = 0; f < NFIELDS; ++f)
            memcpy(nxt_g[f], cur_g[f], (size_t)GCELLS * sizeof(REAL));
        for (long long flat = 0; flat < nregions; ++flat) {{
            long long rm = flat;
            for (int d = NDIM - 1; d >= 0; --d) {{
                origin[d] = (rm % RCOUNTS[d]) * REGION[d];
                rm /= RCOUNTS[d];
            }}
            run_region(cur_g, nxt_g, aux_g, origin, h, mem);
        }}
        for (int f = 0; f < NFIELDS; ++f) {{
            REAL *tmp = cur_g[f];
            cur_g[f] = nxt_g[f];
            nxt_g[f] = tmp;
        }}
        done += h;
    }}
    for (int f = 0; f < NFIELDS; ++f)
        if (cur_g[f] != (REAL *)fields[f])
            memcpy(fields[f], cur_g[f], (size_t)GCELLS * sizeof(REAL));
    free(mem);
    return 0;
}}
"""
