"""On-disk cache of compiled JIT kernels.

Layout (under ``$REPRO_JIT_CACHE`` or ``~/.cache/repro/jit``)::

    <key>.c        generated C source (kept for debuggability)
    <key>.so       compiled shared object
    index.jsonl    crash-safe journal of build records

``<key>`` is the SHA-256 digest of everything that shapes the emitted
machine code: the design signature, the spec signature, the dtype, the
codegen version, and the compiler fingerprint (path + version +
flags).  Any change to any of them lands on a different key, so stale
objects are never loaded — they are simply left behind and can be
cleaned with :meth:`KernelCache.clear`.

Placement is atomic (temp file + ``os.replace`` in the same
directory), so concurrent processes racing to build the same kernel
both succeed and one of the two identical objects wins.  The index
reuses the store's :class:`~repro.store.journal.Journal`, inheriting
its torn-tail recovery; a valid ``.so`` whose index record was lost
is still served (the file is the source of truth, the journal is
metadata for inspection).
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time
from typing import Optional, Union

from repro import obs
from repro.errors import StoreError
from repro.sim.jit.compile import CompilerInfo, compile_shared_object
from repro.store.backing import digest
from repro.store.journal import Journal

PathLike = Union[str, pathlib.Path]

#: Environment variable overriding the cache directory.
CACHE_ENV = "REPRO_JIT_CACHE"

_log = obs.get_logger("sim.jit")


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_JIT_CACHE``, else ``~/.cache/repro/jit``."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro" / "jit"


def kernel_key(
    design_signature,
    spec_signature,
    dtype_name: str,
    codegen_version: int,
    compiler_fingerprint: str,
) -> str:
    """Cache key digest over everything that shapes the binary."""
    return digest(
        {
            "design": repr(design_signature),
            "spec": repr(spec_signature),
            "dtype": dtype_name,
            "codegen": codegen_version,
            "compiler": compiler_fingerprint,
        }
    )


class KernelCache:
    """Content-addressed store of compiled kernel shared objects."""

    def __init__(self, root: Optional[PathLike] = None):
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self._journal: Optional[Journal] = None

    # -- paths ---------------------------------------------------------------

    def so_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.so"

    def source_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.c"

    # -- journal -------------------------------------------------------------

    def _index(self) -> Optional[Journal]:
        """The build-record journal (best-effort: never fatal)."""
        if self._journal is None:
            try:
                self._journal = Journal(
                    self.root / "index.jsonl", sync="never"
                )
            except StoreError:
                return None
        return self._journal

    # -- lookup / build ------------------------------------------------------

    def lookup(self, key: str) -> Optional[pathlib.Path]:
        """Path of a previously built kernel, or ``None`` on a miss."""
        path = self.so_path(key)
        if path.exists():
            obs.inc("sim.jit.cache_hits")
            return path
        obs.inc("sim.jit.cache_misses")
        return None

    def build(
        self, key: str, source: str, compiler: CompilerInfo
    ) -> pathlib.Path:
        """Compile ``source`` and place it in the cache atomically.

        Raises :class:`~repro.errors.BackendUnavailable` when the
        compile fails (propagated from :func:`compile_shared_object`).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.so_path(key)
        started = time.perf_counter()
        with obs.span("sim.jit.compile", key=key[:12]):
            fd, tmp_c = tempfile.mkstemp(
                suffix=".c", prefix=f"{key[:12]}-", dir=self.root
            )
            tmp_so = tmp_c[:-2] + ".so"
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(source)
                compile_shared_object(tmp_c, tmp_so, compiler)
                os.replace(tmp_so, target)
                os.replace(tmp_c, self.source_path(key))
            finally:
                for leftover in (tmp_c, tmp_so):
                    try:
                        os.unlink(leftover)
                    except OSError:
                        pass
        elapsed = time.perf_counter() - started
        obs.inc("sim.jit.compiles")
        obs.observe("sim.jit.compile_s", elapsed)
        index = self._index()
        if index is not None:
            try:
                index.append(
                    {
                        "key": key,
                        "compiler": compiler.version,
                        "compile_s": round(elapsed, 6),
                        "bytes": target.stat().st_size,
                    }
                )
            except (StoreError, OSError):  # pragma: no cover - best effort
                pass
        _log.debug("built jit kernel %s in %.3fs", key[:12], elapsed)
        return target

    def get_or_build(
        self, key: str, source: str, compiler: CompilerInfo
    ) -> pathlib.Path:
        """Cached shared object for ``key``, building it on a miss."""
        hit = self.lookup(key)
        if hit is not None:
            return hit
        return self.build(key, source, compiler)

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.iterdir():
            if entry.suffix in (".so", ".c") or entry.name == "index.jsonl":
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        return removed
