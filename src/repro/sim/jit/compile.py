"""C compiler discovery and shared-object compilation for the JIT.

The backend shells out to a plain C compiler (``cc``/``gcc``/``clang``)
rather than using cffi's API mode, so no setuptools machinery is
involved and the no-compiler case degrades to a clean
:class:`~repro.errors.BackendUnavailable` instead of an import error.

Flag policy is part of the parity contract: ``-O2`` only, with
``-ffp-contract=off`` so the compiler cannot fuse the per-tap
multiply-adds into FMAs (which would change rounding), and never
``-ffast-math`` or ``-march=native``.  The resolved compiler's path,
version line, and flags are folded into a fingerprint that keys the
kernel cache, so switching compilers invalidates cached objects.

Setting the ``CC`` environment variable forces a specific compiler; an
unusable ``CC`` makes the backend unavailable rather than silently
falling back to another compiler, which is what lets CI prove the
numpy fallback path by exporting ``CC=/bin/false``.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.errors import BackendUnavailable

_log = obs.get_logger("sim.jit")

#: Compilers probed, in order, when ``CC`` is not set.
DEFAULT_COMPILERS = ("cc", "gcc", "clang")

#: Flags appended to every compile; see the module docstring before
#: changing anything here — several of them carry parity semantics.
COMPILE_FLAGS = (
    "-std=c99",
    "-O2",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
)

_PROBE_TIMEOUT_S = 30.0
_COMPILE_TIMEOUT_S = 300.0


@dataclass(frozen=True)
class CompilerInfo:
    """A usable C compiler: resolved path, identity, and fingerprint.

    Attributes:
        path: absolute path of the executable.
        version: first line of ``<cc> --version`` output.
        fingerprint: digest over (path, version, flags) — changes to
            any of them must invalidate cached shared objects.
    """

    path: str
    version: str
    fingerprint: str


_lock = threading.Lock()
#: ``CC`` env value (or None) -> probe outcome, memoized per process.
_probe_cache: Dict[Optional[str], Optional[CompilerInfo]] = {}


def _probe(candidate: str) -> Optional[CompilerInfo]:
    """Resolve and version-probe one compiler candidate."""
    path = shutil.which(candidate)
    if path is None:
        return None
    try:
        proc = subprocess.run(
            [path, "--version"],
            capture_output=True,
            text=True,
            timeout=_PROBE_TIMEOUT_S,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    version = (proc.stdout or proc.stderr).splitlines()
    version_line = version[0].strip() if version else ""
    from repro.store.backing import digest

    fingerprint = digest(
        {"path": path, "version": version_line, "flags": COMPILE_FLAGS}
    )
    return CompilerInfo(
        path=path, version=version_line, fingerprint=fingerprint
    )


def find_compiler(cc: Optional[str] = None) -> Optional[CompilerInfo]:
    """The compiler the JIT will use, or ``None`` when unavailable.

    Args:
        cc: explicit compiler command; defaults to the ``CC``
            environment variable.  When set (either way), only that
            command is probed — no fallback to the default list — so
            hiding the compiler is as simple as ``CC=/bin/false``.
    """
    if cc is None:
        cc = os.environ.get("CC") or None
    with _lock:
        if cc in _probe_cache:
            return _probe_cache[cc]
    if cc is not None:
        info = _probe(cc)
    else:
        info = None
        for candidate in DEFAULT_COMPILERS:
            info = _probe(candidate)
            if info is not None:
                break
    with _lock:
        _probe_cache[cc] = info
    return info


def clear_probe_cache() -> None:
    """Forget probe results (tests re-point ``CC`` mid-process)."""
    with _lock:
        _probe_cache.clear()


def compile_shared_object(
    source_path: str,
    output_path: str,
    compiler: CompilerInfo,
    extra_flags: Sequence[str] = (),
) -> None:
    """Compile one C file into a shared object.

    Raises:
        BackendUnavailable: on a non-zero compiler exit or a missing
            executable, with the compiler diagnostics attached —
            callers catch this and fall back to the interpreter.
    """
    command: List[str] = [compiler.path, *COMPILE_FLAGS, *extra_flags]
    command += ["-o", str(output_path), str(source_path)]
    try:
        proc = subprocess.run(
            command,
            capture_output=True,
            text=True,
            timeout=_COMPILE_TIMEOUT_S,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise BackendUnavailable(
            f"C compiler {compiler.path} failed to run: {exc}"
        ) from exc
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout or "").strip()[-2000:]
        raise BackendUnavailable(
            f"C compilation failed (rc={proc.returncode}) with "
            f"{compiler.path}:\n{tail}"
        )
    _log.debug("compiled %s -> %s", source_path, output_path)
