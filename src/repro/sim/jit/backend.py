"""Backend selection and execution glue for the JIT simulator.

Three jobs live here:

- **Resolution** — :func:`resolve_backend` turns a requested backend
  (``"auto" | "numpy" | "jit"``, an explicit argument, the process
  default set by :func:`set_default_backend` / the ``--sim-backend``
  CLI flag, or the ``REPRO_SIM_BACKEND`` environment variable) into
  the concrete backend that will run.  ``auto`` means *jit when a C
  compiler is present, numpy otherwise*; a jit request that cannot be
  honored (no compiler, unsupported design, failed compile) falls
  back to numpy silently — recorded in the ``sim.jit.fallbacks``
  counter and the debug log, never raised on the execution path.
- **Loading** — :func:`get_kernel` generates + compiles + ``dlopen``\\ s
  the specialized kernel for a (design, dtype) pair, with a process
  memo in front of the on-disk :class:`~repro.sim.jit.cache.KernelCache`.
- **Execution** — :class:`CompiledKernel.run` marshals the numpy
  ``State`` dict into raw pointers and invokes the compiled entry
  point, preserving the interpreter's exact copy/astype semantics so
  the result is bitwise-identical.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import BackendUnavailable
from repro.sim.jit import codegen
from repro.sim.jit.cache import KernelCache, kernel_key
from repro.sim.jit.compile import CompilerInfo, find_compiler
from repro.tiling.design import StencilDesign

State = Dict[str, np.ndarray]

_log = obs.get_logger("sim.jit")

#: Recognized backend names.
BACKENDS = ("auto", "numpy", "jit")

#: Environment variable selecting the backend when no argument is given.
BACKEND_ENV = "REPRO_SIM_BACKEND"

_default_lock = threading.Lock()
_default_backend: Optional[str] = None


def set_default_backend(backend: Optional[str]) -> None:
    """Set the process-wide default backend (``None`` clears it).

    The experiments CLI routes ``--sim-backend`` here so every
    executor built later in the run inherits the choice without
    threading a parameter through each call site.
    """
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"Unknown sim backend {backend!r}; expected one of {BACKENDS}"
        )
    global _default_backend
    with _default_lock:
        _default_backend = backend


def requested_backend(backend: Optional[str] = None) -> str:
    """The backend *request* before availability is considered."""
    if backend is None:
        with _default_lock:
            backend = _default_backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"Unknown sim backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def resolve_backend(backend: Optional[str] = None) -> str:
    """Concrete backend (``"numpy"`` or ``"jit"``) that will run.

    ``auto`` resolves to ``jit`` exactly when a working C compiler is
    found; an explicit ``jit`` request with no compiler resolves to
    ``numpy`` (recorded as a fallback) rather than raising, per the
    never-fatal contract.
    """
    request = requested_backend(backend)
    if request == "numpy":
        return "numpy"
    if find_compiler() is not None:
        return "jit"
    if request == "jit":
        obs.inc("sim.jit.fallbacks")
        _log.debug("jit backend requested but no C compiler found")
    return "numpy"


def backend_report(backend: Optional[str] = None) -> Dict[str, object]:
    """Resolution summary for run reports and ``/healthz``."""
    request = requested_backend(backend)
    compiler = find_compiler()
    return {
        "requested": request,
        "resolved": resolve_backend(backend),
        "compiler": compiler.version if compiler else None,
    }


class CompiledKernel:
    """A loaded shared object specialized to one (design, dtype)."""

    def __init__(
        self,
        design: StencilDesign,
        dtype: np.dtype,
        so_path: str,
    ):
        import cffi

        self.design = design
        self.dtype = np.dtype(dtype)
        self.so_path = str(so_path)
        self._ffi = cffi.FFI()
        self._ffi.cdef(codegen.KERNEL_CDEF)
        self._lib = self._ffi.dlopen(self.so_path)
        self._entry = getattr(self._lib, codegen.KERNEL_ENTRY)

    def run(
        self,
        state: Optional[State] = None,
        aux: Optional[State] = None,
        iterations: Optional[int] = None,
    ) -> State:
        """Execute the design; mirrors ``FunctionalExecutor.run``."""
        spec = self.design.spec
        total = spec.iterations if iterations is None else iterations
        current = {
            k: v.astype(self.dtype, order="C", copy=True)
            for k, v in (state or spec.initial_state()).items()
        }
        aux_arrays = {
            k: np.ascontiguousarray(v)
            for k, v in dict(aux or spec.aux_state()).items()
        }
        ffi = self._ffi
        field_ptrs = ffi.new("void *[]", max(len(spec.pattern.fields), 1))
        for i, name in enumerate(spec.pattern.fields):
            field_ptrs[i] = ffi.cast("void *", current[name].ctypes.data)
        aux_ptrs = ffi.new("void *[]", max(len(spec.pattern.aux), 1))
        for i, name in enumerate(spec.pattern.aux):
            aux_ptrs[i] = ffi.cast("void *", aux_arrays[name].ctypes.data)
        started = time.perf_counter()
        rc = self._entry(field_ptrs, aux_ptrs, int(total))
        obs.observe("sim.jit.run_s", time.perf_counter() - started)
        if rc != 0:
            raise BackendUnavailable(
                f"compiled kernel {self.so_path} failed with rc={rc}"
            )
        obs.inc("sim.jit.runs")
        return current


_memo_lock = threading.Lock()
_kernel_memo: Dict[Tuple[str, str], CompiledKernel] = {}
_shared_cache: Optional[KernelCache] = None


def _disk_cache() -> KernelCache:
    global _shared_cache
    with _memo_lock:
        if _shared_cache is None:
            _shared_cache = KernelCache()
        return _shared_cache


def clear_memo() -> None:
    """Drop the in-process kernel memo and cache handle (for tests).

    Does not delete on-disk artifacts; a subsequent :func:`get_kernel`
    re-reads the disk cache (and re-resolves ``REPRO_JIT_CACHE``).
    """
    global _shared_cache
    with _memo_lock:
        _kernel_memo.clear()
        _shared_cache = None


def runtime_unsupported_reason(
    design: StencilDesign, aux: Optional[State]
) -> Optional[str]:
    """Input-dependent reasons the JIT cannot match numpy bitwise.

    The interpreter never casts aux arrays, so mixed-dtype aux inputs
    are accumulated at numpy's promoted precision — something the
    single-precision C kernel cannot reproduce.  Such runs stay on
    the interpreter.
    """
    spec = design.spec
    aux_arrays = dict(aux or {})
    for name in spec.pattern.aux:
        array = aux_arrays.get(name)
        if array is not None and array.dtype != spec.dtype:
            return (
                f"aux array {name!r} has dtype {array.dtype}, spec has "
                f"{spec.dtype} (numpy promotes; C cannot match bitwise)"
            )
    return None


def get_kernel(
    design: StencilDesign,
    dtype: Optional[np.dtype] = None,
    cache: Optional[KernelCache] = None,
) -> CompiledKernel:
    """Compiled kernel for (design, dtype): memo -> disk -> build.

    Raises:
        BackendUnavailable: no compiler, unsupported design/dtype, or
            failed compilation.  Callers on the execution path catch
            this and fall back to the interpreter.
    """
    dtype = np.dtype(design.spec.dtype if dtype is None else dtype)
    reason = codegen.unsupported_reason(design, dtype)
    if reason is not None:
        raise BackendUnavailable(reason)
    compiler = find_compiler()
    if compiler is None:
        raise BackendUnavailable("no working C compiler found")
    key = kernel_key(
        design.signature(),
        design.spec.signature(),
        dtype.name,
        codegen.CODEGEN_VERSION,
        compiler.fingerprint,
    )
    memo_key = (key, dtype.name)
    with _memo_lock:
        kernel = _kernel_memo.get(memo_key)
    if kernel is not None:
        obs.inc("sim.jit.memo_hits")
        return kernel
    disk = cache if cache is not None else _disk_cache()
    so_path = disk.lookup(key)
    if so_path is None:
        source = codegen.generate_kernel_source(design, dtype)
        so_path = disk.build(key, source, compiler)
    try:
        kernel = CompiledKernel(design, dtype, str(so_path))
    except OSError as exc:
        raise BackendUnavailable(
            f"cannot load compiled kernel {so_path}: {exc}"
        ) from exc
    with _memo_lock:
        _kernel_memo[memo_key] = kernel
    return kernel


def run_jit(
    design: StencilDesign,
    state: Optional[State] = None,
    aux: Optional[State] = None,
    iterations: Optional[int] = None,
) -> State:
    """Execute ``design`` through the JIT backend.

    Raises :class:`BackendUnavailable` when the design or environment
    cannot be JIT-executed; callers fall back to the interpreter.
    """
    reason = runtime_unsupported_reason(design, aux)
    if reason is not None:
        raise BackendUnavailable(reason)
    kernel = get_kernel(design)
    return kernel.run(state, aux, iterations)
