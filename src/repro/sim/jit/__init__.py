"""repro.sim.jit — compiled (C + cffi) simulator backend.

Lowers a :class:`~repro.tiling.design.StencilDesign` to specialized
C99, compiles it with the system C compiler at runtime, and executes
it on the same numpy-backed state arrays as the interpreter — with a
**bitwise-identical** result contract (see :mod:`repro.sim.jit.codegen`
and ``docs/SIM.md``).  Kernels are cached on disk keyed by design,
spec, dtype, codegen version, and compiler fingerprint.

The subsystem is optional at runtime: when no C compiler is present
every entry point raises :class:`~repro.errors.BackendUnavailable`,
which the executors catch to fall back to the numpy interpreter.
"""

from repro.sim.jit.backend import (
    BACKEND_ENV,
    BACKENDS,
    CompiledKernel,
    backend_report,
    clear_memo,
    get_kernel,
    requested_backend,
    resolve_backend,
    run_jit,
    set_default_backend,
)
from repro.sim.jit.cache import CACHE_ENV, KernelCache, kernel_key
from repro.sim.jit.codegen import (
    CODEGEN_VERSION,
    KERNEL_ENTRY,
    generate_kernel_source,
    unsupported_reason,
)
from repro.sim.jit.compile import (
    COMPILE_FLAGS,
    CompilerInfo,
    clear_probe_cache,
    compile_shared_object,
    find_compiler,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "CACHE_ENV",
    "CODEGEN_VERSION",
    "COMPILE_FLAGS",
    "CompiledKernel",
    "CompilerInfo",
    "KERNEL_ENTRY",
    "KernelCache",
    "backend_report",
    "clear_memo",
    "clear_probe_cache",
    "compile_shared_object",
    "find_compiler",
    "generate_kernel_source",
    "get_kernel",
    "kernel_key",
    "requested_backend",
    "resolve_backend",
    "run_jit",
    "set_default_backend",
    "unsupported_reason",
]
