"""Execution-trace export (Chrome tracing / Perfetto format).

The simulator's per-kernel phase timelines are the reproduction's
version of the paper's Fig. 4 execution diagrams.  This module exports
one region block's timelines as a Chrome ``chrome://tracing`` /
Perfetto-compatible JSON object, so the launch stagger, pipe stalls,
and barrier waits can be inspected visually.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

from repro.sim.executor import SimulationResult
from repro.sim.kernel import KernelPhase

#: Stable color names per phase (Chrome tracing's `cname` field).
_PHASE_COLORS: Dict[KernelPhase, str] = {
    KernelPhase.LAUNCH: "grey",
    KernelPhase.READ: "thread_state_iowait",
    KernelPhase.COMPUTE: "thread_state_running",
    KernelPhase.PIPE_WAIT: "terrible",
    KernelPhase.WRITE: "thread_state_iowait",
    KernelPhase.BARRIER_WAIT: "generic_work",
}


def to_chrome_trace(result: SimulationResult) -> dict:
    """One region block's timelines as a Chrome-tracing JSON object.

    Timestamps are microseconds at the board's kernel clock.  Each
    kernel becomes a thread; phases become complete ("X") events with
    the fused-iteration index attached as an argument.
    """
    cycles_to_us = 1e6 / result.board.clock_hz
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": result.design.describe()},
        }
    ]
    for tid, (index, timeline) in enumerate(
        sorted(result.block.timelines.items())
    ):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"kernel {index}"},
            }
        )
        for record in timeline.records:
            events.append(
                {
                    "name": str(record.phase),
                    "cat": "kernel-phase",
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": record.start * cycles_to_us,
                    "dur": record.duration * cycles_to_us,
                    "cname": _PHASE_COLORS[record.phase],
                    "args": {"iteration": record.iteration},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "design": result.design.describe(),
            "board": result.board.name,
            "block_cycles": result.block.block_cycles,
            "num_blocks": result.num_blocks,
        },
    }


def write_chrome_trace(
    result: SimulationResult, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the trace JSON to ``path`` and return it."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(to_chrome_trace(result), indent=1))
    return target
