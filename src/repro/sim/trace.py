"""Execution-trace export (Chrome tracing / Perfetto format).

The simulator's per-kernel phase timelines are the reproduction's
version of the paper's Fig. 4 execution diagrams.  This module encodes
one region block's timelines as Chrome ``chrome://tracing`` /
Perfetto-compatible events, so the launch stagger, pipe stalls, and
barrier waits can be inspected visually.

Encoding goes through the shared
:class:`~repro.obs.export.ChromeTraceBuilder`, which is the same path
the observability layer uses for DSE spans — that is what lets
:class:`~repro.sim.executor.SimulationExecutor` drop a simulation's
phase timeline into the same merged trace file as the spans
(``repro.obs.export_chrome_trace``).  :func:`to_chrome_trace` remains
the standalone single-simulation exporter.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

from repro.obs.export import ChromeTraceBuilder
from repro.sim.executor import SimulationResult
from repro.sim.kernel import KernelPhase

#: Stable color names per phase (Chrome tracing's `cname` field).
_PHASE_COLORS: Dict[KernelPhase, str] = {
    KernelPhase.LAUNCH: "grey",
    KernelPhase.READ: "thread_state_iowait",
    KernelPhase.COMPUTE: "thread_state_running",
    KernelPhase.PIPE_WAIT: "terrible",
    KernelPhase.WRITE: "thread_state_iowait",
    KernelPhase.BARRIER_WAIT: "generic_work",
}


def simulation_chrome_events(
    result: SimulationResult, pid: int = 0, ts_offset_us: float = 0.0
) -> List[dict]:
    """One region block's timelines as a list of Chrome-trace events.

    Timestamps are microseconds at the board's kernel clock, shifted by
    ``ts_offset_us`` (used to anchor the block at the wall-clock moment
    the simulation ran when merging with span events).  Each kernel
    becomes a thread; phases become complete ("X") events with the
    fused-iteration index attached as an argument.
    """
    cycles_to_us = 1e6 / result.board.clock_hz
    builder = ChromeTraceBuilder()
    builder.process_name(pid, result.design.describe())
    for tid, (index, timeline) in enumerate(
        sorted(result.block.timelines.items())
    ):
        builder.thread_name(pid, tid, f"kernel {index}")
        for record in timeline.records:
            builder.complete(
                str(record.phase),
                "kernel-phase",
                pid,
                tid,
                ts_offset_us + record.start * cycles_to_us,
                record.duration * cycles_to_us,
                args={
                    "iteration": record.iteration,
                    "backend": result.sim_backend,
                },
                cname=_PHASE_COLORS[record.phase],
            )
    return builder.events


def to_chrome_trace(result: SimulationResult) -> dict:
    """One simulation as a standalone Chrome-tracing JSON object."""
    return {
        "traceEvents": simulation_chrome_events(result),
        "displayTimeUnit": "ms",
        "otherData": {
            "design": result.design.describe(),
            "board": result.board.name,
            "block_cycles": result.block.block_cycles,
            "num_blocks": result.num_blocks,
            "sim_backend": result.sim_backend,
        },
    }


def write_chrome_trace(
    result: SimulationResult, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the trace JSON to ``path`` and return it."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(to_chrome_trace(result), indent=1))
    return target
