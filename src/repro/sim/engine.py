"""The region-block execution engine.

Simulates one fused block of one region cycle-approximately: ``K``
kernels are launched with the host's sequential stagger, burst-read
their footprints, run ``h`` fused iterations in iteration-level
lockstep with their pipe neighbors (a kernel's dependent cells for
iteration ``i`` cannot start before its neighbors finish iteration
``i - 1`` and the halo strips cross the pipes), burst-write their
outputs, and synchronize at the block barrier.

Because every region block of a design is geometrically identical, the
executor simulates one block and scales by the block count — exactly
the structure of the paper's Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import obs
from repro.fpga.flexcl import PipelineReport
from repro.model.predictor import LatencyBreakdown
from repro.opencl.platform import BoardSpec
from repro.sim.kernel import KernelPhase, KernelTimeline
from repro.sim.launch import LaunchScheduler
from repro.sim.memsys import MemorySystem
from repro.sim.pipe_sim import halo_transfer_cycles
from repro.tiling.design import StencilDesign
from repro.tiling.schedule import split_independent_dependent

Index = Tuple[int, ...]


@dataclass
class RegionBlockResult:
    """Outcome of simulating one region block.

    Attributes:
        block_cycles: cycles from host launch to the block barrier.
        timelines: per-kernel phase timelines.
        breakdowns: per-kernel latency breakdowns (one block's worth).
        critical_index: the kernel that set the barrier.
    """

    block_cycles: float
    timelines: Dict[Index, KernelTimeline]
    breakdowns: Dict[Index, LatencyBreakdown]
    critical_index: Index


class RegionBlockEngine:
    """Simulates one region block of a design."""

    def __init__(
        self,
        design: StencilDesign,
        board: BoardSpec,
        report: PipelineReport,
        overlap_sharing: bool = True,
        sim_backend: str = "numpy",
    ):
        """
        Args:
            design: the design to simulate.
            board: platform characteristics.
            report: pipeline report (II, unroll).
            overlap_sharing: when False, disable the interior-first
                latency hiding — every halo transfer serializes with
                computation (the ablation of Section 3.1's mechanism).
            sim_backend: the value-execution backend active for this
                run, stamped into the ``sim.block`` span so recorded
                traces distinguish interpreted from compiled runs.
        """
        self.design = design
        self.board = board
        self.report = report
        self.overlap_sharing = overlap_sharing
        self.sim_backend = sim_backend
        self.memsys = MemorySystem(board, design.parallelism)
        self.launcher = LaunchScheduler(board)

    def run(self) -> RegionBlockResult:
        """Simulate the block and return timelines and breakdowns."""
        with obs.span(
            "sim.block",
            kernels=len(self.design.tiles),
            fused_depth=self.design.fused_depth,
            backend=self.sim_backend,
        ):
            result = self._run()
        if obs.enabled():
            obs.inc("sim.blocks_simulated")
        return result

    def _run(self) -> RegionBlockResult:
        design = self.design
        tiles = {t.index: t for t in design.tiles}
        order = self.launcher.launch_order(list(tiles))
        launch_times = self.launcher.launch_times(len(order))
        ready = {
            index: launch_times[pos] for pos, index in enumerate(order)
        }
        neighbors = self._neighbor_map()
        c_elem = self.report.cycles_per_element

        timelines = {index: KernelTimeline(index) for index in tiles}
        read_cycles: Dict[Index, float] = {}
        write_cycles: Dict[Index, float] = {}
        pipe_wait: Dict[Index, float] = {index: 0.0 for index in tiles}

        # Phase 1: launch + burst read.
        finished: Dict[Index, float] = {}
        for index, tile in tiles.items():
            tl = timelines[index]
            tl.add(KernelPhase.LAUNCH, 0.0, ready[index])
            read_cycles[index] = self.memsys.read_cycles(
                design.tile_read_bytes(tile)
            )
            read_end = ready[index] + read_cycles[index]
            tl.add(KernelPhase.READ, ready[index], read_end)
            finished[index] = read_end

        # Phase 2: fused iterations under the boundary-first protocol.
        #
        # Each iteration a kernel (1) computes its shared-boundary cells
        # (using the ghost strips its neighbors sent during their
        # previous iteration), (2) pushes them into the pipes, and
        # (3) computes the remaining interior/cone cells while the
        # neighbors' next strips stream in.  Receives therefore overlap
        # the interior phase ("pipe operations are executed in parallel
        # with the processing of independent elements", Section 3.1);
        # a kernel only stalls when a neighbor's boundary phase plus the
        # pipe transfer outlasts the kernel's whole previous iteration.
        boundary_sent: Dict[Index, float] = dict(finished)
        for i in range(1, design.fused_depth + 1):
            previous = dict(finished)
            previous_sent = dict(boundary_sent)
            for index, tile in tiles.items():
                tl = timelines[index]
                indep, dep = split_independent_dependent(design, tile, i)
                start = previous[index]
                if design.sharing and i >= 2 and dep > 0:
                    transfer = halo_transfer_cycles(
                        design, tile, i, self.board
                    )
                    if self.overlap_sharing:
                        # Transfers stream in during the neighbors'
                        # interior phases; stall only when a producer's
                        # boundary phase plus the transfer outlasts this
                        # kernel's whole previous iteration.
                        arrive = max(
                            (
                                previous_sent[n] + transfer
                                for n in neighbors[index]
                            ),
                            default=0.0,
                        )
                    else:
                        # Ablation: wait for the neighbors' previous
                        # iterations to fully finish, then pay the
                        # transfer serially.
                        produced = max(
                            (previous[n] for n in neighbors[index]),
                            default=0.0,
                        )
                        arrive = max(start, produced) + transfer
                    if arrive > start:
                        tl.add(KernelPhase.PIPE_WAIT, start, arrive, i)
                        pipe_wait[index] += arrive - start
                        start = arrive
                boundary_end = start + c_elem * dep
                end = boundary_end + c_elem * indep
                tl.add(KernelPhase.COMPUTE, start, end, i)
                boundary_sent[index] = boundary_end
                finished[index] = end

        # Phase 3: burst write + block barrier.
        write_end: Dict[Index, float] = {}
        for index, tile in tiles.items():
            write_cycles[index] = self.memsys.write_cycles(
                design.tile_write_bytes(tile)
            )
            end = finished[index] + write_cycles[index]
            timelines[index].add(
                KernelPhase.WRITE, finished[index], end
            )
            write_end[index] = end
        block_end = max(write_end.values())
        for index in tiles:
            timelines[index].add(
                KernelPhase.BARRIER_WAIT, write_end[index], block_end
            )

        breakdowns = self._breakdowns(
            tiles, ready, read_cycles, write_cycles, pipe_wait,
            write_end, block_end, c_elem,
        )
        critical = max(write_end, key=lambda idx: write_end[idx])
        return RegionBlockResult(
            block_cycles=block_end,
            timelines=timelines,
            breakdowns=breakdowns,
            critical_index=critical,
        )

    def _neighbor_map(self) -> Dict[Index, List[Index]]:
        adjacency: Dict[Index, List[Index]] = {
            t.index: [] for t in self.design.tiles
        }
        for low, high, _dim in self.design.tile_grid.neighbors():
            adjacency[low.index].append(high.index)
            adjacency[high.index].append(low.index)
        return adjacency

    def _breakdowns(
        self,
        tiles,
        ready,
        read_cycles,
        write_cycles,
        pipe_wait,
        write_end,
        block_end,
        c_elem,
    ) -> Dict[Index, LatencyBreakdown]:
        design = self.design
        result: Dict[Index, LatencyBreakdown] = {}
        for index, tile in tiles.items():
            useful = c_elem * design.fused_depth * tile.cells
            redundant = (
                c_elem * design.tile_compute_cells(tile) - useful
            )
            result[index] = LatencyBreakdown(
                launch=ready[index],
                read=read_cycles[index],
                write=write_cycles[index],
                compute_useful=useful,
                compute_redundant=redundant,
                share_exposed=pipe_wait[index],
                wait=block_end - write_end[index],
            )
        return result
