"""Simulated global-memory system.

Burst transfers at barrier boundaries, with the effective bandwidth
shared evenly among the ``K`` kernels of a region — the same contract
the analytical model assumes (Eqs. 5-6), so that model-vs-simulator
differences isolate the effects the model *doesn't* capture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.opencl.memory import transfer_cycles
from repro.opencl.platform import BoardSpec


@dataclass
class MemorySystem:
    """Global-memory timing for one region's ``K`` concurrent kernels.

    Attributes:
        board: platform description.
        sharing_kernels: ``K``.
    """

    board: BoardSpec
    sharing_kernels: int

    def __post_init__(self) -> None:
        if self.sharing_kernels < 1:
            raise SimulationError(
                f"sharing_kernels must be >= 1: {self.sharing_kernels}"
            )
        #: Lifetime statistics (bytes moved), for reports and tests.
        self.bytes_read = 0
        self.bytes_written = 0

    def read_cycles(self, size_bytes: int) -> float:
        """Burst-read latency seen by one kernel."""
        self.bytes_read += size_bytes
        return transfer_cycles(size_bytes, self.board, self.sharing_kernels)

    def write_cycles(self, size_bytes: int) -> float:
        """Burst-write latency seen by one kernel."""
        self.bytes_written += size_bytes
        return transfer_cycles(size_bytes, self.board, self.sharing_kernels)
