"""Tiled iteration-fusion designs: the paper's architecture layer.

- :mod:`repro.tiling.tile` — rectilinear tile grids and per-tile roles.
- :mod:`repro.tiling.cone` — iteration-fusion cone geometry.
- :mod:`repro.tiling.design` — :class:`StencilDesign`, the common
  description consumed by the model, simulator, estimator and codegen.
- :mod:`repro.tiling.baseline` — overlapped tiling (Nacci, DAC'13).
- :mod:`repro.tiling.pipeshared` — equal tiles + pipe data sharing.
- :mod:`repro.tiling.heterogeneous` — workload-balanced tile sizes.
- :mod:`repro.tiling.balancing` — the balancing-factor solver.
- :mod:`repro.tiling.schedule` — interior-first element scheduling.
"""

from repro.tiling.tile import TileGrid, TileInfo
from repro.tiling.cone import (
    cone_footprint_shape,
    cone_read_shape,
    cone_total_cells,
    cone_workloads,
)
from repro.tiling.design import DesignKind, PipeFace, StencilDesign
from repro.tiling.baseline import make_baseline_design
from repro.tiling.pipeshared import make_pipe_shared_design
from repro.tiling.heterogeneous import make_heterogeneous_design
from repro.tiling.balancing import balanced_extents, balancing_factors
from repro.tiling.schedule import split_independent_dependent

__all__ = [
    "TileGrid",
    "TileInfo",
    "cone_footprint_shape",
    "cone_read_shape",
    "cone_total_cells",
    "cone_workloads",
    "DesignKind",
    "PipeFace",
    "StencilDesign",
    "make_baseline_design",
    "make_pipe_shared_design",
    "make_heterogeneous_design",
    "balanced_extents",
    "balancing_factors",
    "split_independent_dependent",
]
