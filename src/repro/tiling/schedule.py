"""Interior-first element scheduling (Section 3.1, latency hiding).

The generated kernels split each iteration's cells into an
*independent* group (computable from data already on chip) and a
*dependent* group (needing the halo strips arriving through pipes), and
process the independent group first so pipe transfers overlap with
useful computation.

The dependent group is the layer of cells within one stencil radius of
a pipe-served face; everything else is independent.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.tiling.design import StencilDesign
from repro.tiling.tile import TileInfo


def split_independent_dependent(
    design: StencilDesign, tile: TileInfo, iteration: int
) -> Tuple[int, int]:
    """Cell counts of the (independent, dependent) groups.

    Args:
        design: the stencil design.
        tile: which kernel's tile.
        iteration: fused iteration, ``1..h``.

    Returns:
        ``(independent_cells, dependent_cells)``; their sum equals the
        iteration's footprint.  For non-sharing designs everything is
        independent.
    """
    footprint = design.footprint_shape(tile, iteration)
    total = math.prod(footprint)
    if not design.sharing:
        return total, 0
    interior_shape = tuple(
        max(0, fp - r * n_shared)
        for fp, r, n_shared in zip(
            footprint, design.radius, design.halo_sides(tile)
        )
    )
    independent = math.prod(interior_shape)
    return independent, total - independent


def dependent_fraction(
    design: StencilDesign, tile: TileInfo, iteration: int
) -> float:
    """Fraction of the iteration's cells that wait on pipe data."""
    independent, dependent = split_independent_dependent(
        design, tile, iteration
    )
    total = independent + dependent
    return dependent / total if total else 0.0
