"""Rectilinear tile grids within a region.

A *region* is the patch of the stencil grid processed by ``K`` parallel
kernels during one fused block of ``h`` iterations (Fig. 4 of the
paper).  The region is partitioned into a rectilinear grid of tiles —
equal extents for the baseline and pipe-shared designs, per-position
extents for the heterogeneous design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import SpecificationError
from repro.utils.grids import Box, iter_boxes


@dataclass(frozen=True)
class TileInfo:
    """One tile's geometry and role within the region.

    Attributes:
        index: position in the region's tile grid (per dimension).
        offset: region-local lower corner of the tile's output box.
        shape: tile extents ``w_d``.
        outer: per-dimension count of *region-outer* sides (0, 1 or 2).
            An outer side faces a neighboring region, whose intermediate
            iteration values are unavailable, so the fusion cone must
            expand redundantly across it.  An inner side faces a sibling
            tile in the same region.
        shared: per-dimension count of sides shared with sibling tiles
            (served by pipes in the sharing designs, or recomputed
            redundantly in the baseline).
    """

    index: Tuple[int, ...]
    offset: Tuple[int, ...]
    shape: Tuple[int, ...]
    outer: Tuple[int, ...]
    shared: Tuple[int, ...]

    @property
    def ndim(self) -> int:
        """Grid dimensionality."""
        return len(self.shape)

    @property
    def cells(self) -> int:
        """Output cells of the tile (``Π w_d``)."""
        return math.prod(self.shape)

    @property
    def box(self) -> Box:
        """Region-local output box."""
        return Box(
            self.offset, tuple(o + s for o, s in zip(self.offset, self.shape))
        )

    @property
    def is_corner(self) -> bool:
        """True when the tile touches the region boundary in every dim."""
        return all(n >= 1 for n in self.outer)


class TileGrid:
    """A rectilinear partition of the region into tiles.

    Attributes:
        extents: per dimension, the tuple of consecutive tile extents.
    """

    def __init__(self, extents: Sequence[Sequence[int]]):
        if not extents:
            raise SpecificationError("TileGrid needs at least one dimension")
        self.extents: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(e) for e in dim_extents) for dim_extents in extents
        )
        for d, dim_extents in enumerate(self.extents):
            if not dim_extents:
                raise SpecificationError(
                    f"TileGrid dimension {d} has no tiles"
                )
            for extent in dim_extents:
                if extent <= 0:
                    raise SpecificationError(
                        f"TileGrid extent must be positive, got {extent} "
                        f"in dimension {d}"
                    )

    @classmethod
    def uniform(
        cls, tile_shape: Sequence[int], counts: Sequence[int]
    ) -> "TileGrid":
        """Equal-size grid: ``counts_d`` tiles of extent ``tile_shape_d``."""
        if len(tile_shape) != len(counts):
            raise SpecificationError(
                f"tile_shape {tile_shape} and counts {counts} rank mismatch"
            )
        return cls(
            [
                [int(w)] * int(k)
                for w, k in zip(tile_shape, counts)
            ]
        )

    @property
    def ndim(self) -> int:
        """Grid dimensionality."""
        return len(self.extents)

    @property
    def counts(self) -> Tuple[int, ...]:
        """Tiles per dimension ``k_d``."""
        return tuple(len(e) for e in self.extents)

    @property
    def parallelism(self) -> int:
        """Total kernels per region ``K = Π k_d``."""
        return math.prod(self.counts)

    @property
    def region_shape(self) -> Tuple[int, ...]:
        """Region extents (sum of tile extents per dimension)."""
        return tuple(sum(e) for e in self.extents)

    @property
    def is_uniform(self) -> bool:
        """True when all tiles share the same shape."""
        return all(len(set(e)) == 1 for e in self.extents)

    def tiles(self) -> List[TileInfo]:
        """All tiles with positions, offsets, and boundary roles."""
        counts = self.counts
        result: List[TileInfo] = []
        origin = (0,) * self.ndim
        for index, box in iter_boxes(origin, self.extents):
            outer = tuple(
                (1 if index[d] == 0 else 0)
                + (1 if index[d] == counts[d] - 1 else 0)
                for d in range(self.ndim)
            )
            shared = tuple(2 - n for n in outer)
            result.append(
                TileInfo(
                    index=index,
                    offset=box.lo,
                    shape=box.shape,
                    outer=outer,
                    shared=shared,
                )
            )
        return result

    def tile_at(self, index: Sequence[int]) -> TileInfo:
        """The tile at a given grid position."""
        target = tuple(int(i) for i in index)
        for tile in self.tiles():
            if tile.index == target:
                return tile
        raise SpecificationError(
            f"No tile at index {target} in grid with counts {self.counts}"
        )

    def neighbors(
        self,
    ) -> Iterator[Tuple[TileInfo, TileInfo, int]]:
        """Adjacent tile pairs ``(low, high, dim)`` sharing a face."""
        tiles = {t.index: t for t in self.tiles()}
        counts = self.counts
        for index, tile in tiles.items():
            for d in range(self.ndim):
                if index[d] + 1 < counts[d]:
                    nbr_index = tuple(
                        v + 1 if i == d else v for i, v in enumerate(index)
                    )
                    yield tile, tiles[nbr_index], d

    def signature(self) -> Tuple[Tuple[int, ...], ...]:
        """Canonical hashable identity (the per-dimension extents)."""
        return self.extents

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TileGrid):
            return NotImplemented
        return self.extents == other.extents

    def __hash__(self) -> int:
        return hash(self.extents)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TileGrid(counts={self.counts}, region={self.region_shape})"
