"""Heterogeneous design: pipe sharing + workload-balanced tile sizes.

This is the paper's proposed architecture (Fig. 1(d)): the pipe-shared
region layout with the tile extents rebalanced so the region-boundary
kernels (which still pay outer cone expansion) are no longer the
barrier-setting stragglers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SpecificationError
from repro.stencil.spec import StencilSpec
from repro.tiling.balancing import balanced_tile_grid
from dataclasses import replace

from repro.tiling.design import DesignKind, StencilDesign, auto_pipe_depth


def make_heterogeneous_design(
    spec: StencilSpec,
    region_shape: Sequence[int],
    counts: Sequence[int],
    fused_depth: int,
    unroll: int = 1,
    pipe_depth: Optional[int] = None,
    min_extent: Optional[int] = None,
) -> StencilDesign:
    """Build a balanced heterogeneous design over a fixed region.

    The region extents are kept identical to the equal-tiling design it
    replaces (so the region grid still covers the stencil array the
    same way); only the internal partition changes.

    Args:
        spec: the stencil workload.
        region_shape: region extents ``R_d`` (e.g. ``k_d * w_d`` of the
            design being rebalanced).
        counts: tiles per dimension (parallelism is preserved).
        fused_depth: cone depth ``h``.
        unroll: processing elements per kernel.
        pipe_depth: FIFO depth of each generated pipe; sized to the
            design's largest single-face halo transfer when omitted.
        min_extent: smallest admissible tile extent (default: the
            stencil radius, so every tile can source a full halo).

    Returns:
        A :class:`StencilDesign` of kind ``HETEROGENEOUS``.
    """
    if len(region_shape) != spec.ndim or len(counts) != spec.ndim:
        raise SpecificationError(
            f"region_shape {region_shape} / counts {counts} must have "
            f"rank {spec.ndim}"
        )
    if min_extent is None:
        min_extent = max(1, max(spec.pattern.radius))
    grid = balanced_tile_grid(
        region_shape,
        counts,
        spec.pattern.radius,
        fused_depth,
        min_extent=min_extent,
    )
    design = StencilDesign(
        kind=DesignKind.HETEROGENEOUS,
        spec=spec,
        fused_depth=fused_depth,
        tile_grid=grid,
        unroll=unroll,
    )
    if pipe_depth is None:
        pipe_depth = auto_pipe_depth(design)
    return replace(design, pipe_depth=pipe_depth)
