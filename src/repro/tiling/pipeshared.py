"""Pipe-shared design: equal tiles bridged by OpenCL pipes (Fig. 1(c)).

Tiles within a region exchange boundary halos through pipes every fused
iteration, eliminating the redundant computation across *interior*
faces.  Cone expansion remains only across region-outer faces, whose
neighboring regions' intermediate values are unavailable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from dataclasses import replace

from repro.errors import SpecificationError
from repro.stencil.spec import StencilSpec
from repro.tiling.design import DesignKind, StencilDesign, auto_pipe_depth
from repro.tiling.tile import TileGrid


def make_pipe_shared_design(
    spec: StencilSpec,
    tile_shape: Sequence[int],
    counts: Sequence[int],
    fused_depth: int,
    unroll: int = 1,
    pipe_depth: Optional[int] = None,
) -> StencilDesign:
    """Build an equal-tile pipe-sharing design.

    Args:
        spec: the stencil workload.
        tile_shape: output tile extents (equal for all tiles).
        counts: tiles per dimension.
        fused_depth: cone depth ``h``.
        unroll: processing elements per kernel.
        pipe_depth: FIFO depth of each generated pipe; sized to the
            design's largest single-face halo transfer when omitted.

    Returns:
        A :class:`StencilDesign` of kind ``PIPE_SHARED``.
    """
    if len(tile_shape) != spec.ndim or len(counts) != spec.ndim:
        raise SpecificationError(
            f"tile_shape {tile_shape} / counts {counts} must have "
            f"rank {spec.ndim}"
        )
    grid = TileGrid.uniform(tile_shape, counts)
    design = StencilDesign(
        kind=DesignKind.PIPE_SHARED,
        spec=spec,
        fused_depth=fused_depth,
        tile_grid=grid,
        unroll=unroll,
    )
    if pipe_depth is None:
        pipe_depth = auto_pipe_depth(design)
    return replace(design, pipe_depth=pipe_depth)
