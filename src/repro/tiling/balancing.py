"""Workload-balancing solver for heterogeneous tiling (Section 3.2).

In the pipe-shared design, region-boundary tiles still pay cone
expansion across their outer faces, so at the per-iteration barrier the
interior kernels wait for them.  The heterogeneous design rebalances by
shrinking boundary tiles and growing interior ones.

The balance criterion: at fused iteration ``i`` a tile at position
``j`` computes (per dimension) an effective extent
``e_j + r * (h - i) * n_j`` where ``n_j`` is its outer-side count.
Averaged over ``i = 1..h`` the growth term is ``r * (h - 1) / 2 * n_j``,
so choosing extents with ``e_j + r * (h - 1) / 2 * n_j`` equal across
positions equalizes the *average* per-iteration workload dimension by
dimension, and hence (as a product across dimensions) across all tiles.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SpecificationError
from repro.tiling.tile import TileGrid
from repro.utils.validation import check_positive


def _outer_multiplicities(count: int) -> List[int]:
    """Outer-side count per tile position along one dimension."""
    if count == 1:
        return [2]
    return [1] + [0] * (count - 2) + [1]


def balanced_extents(
    region_extent: int,
    count: int,
    radius: int,
    fused_depth: int,
    min_extent: int = 1,
) -> List[int]:
    """Balanced tile extents along one dimension.

    Args:
        region_extent: total region length ``R_d`` to partition.
        count: number of tiles ``k_d``.
        radius: stencil radius ``r_d``.
        fused_depth: cone depth ``h``.
        min_extent: smallest admissible tile extent.

    Returns:
        Per-position extents summing exactly to ``region_extent``, with
        boundary positions shrunk by the mean cone growth.

    Raises:
        SpecificationError: when the region cannot accommodate
            ``count`` tiles of at least ``min_extent``.
    """
    check_positive("region_extent", region_extent)
    check_positive("count", count)
    check_positive("fused_depth", fused_depth)
    if radius < 0:
        raise SpecificationError(f"radius must be >= 0: {radius}")
    if region_extent < count * min_extent:
        raise SpecificationError(
            f"Region extent {region_extent} cannot hold {count} tiles of "
            f"at least {min_extent}"
        )
    growth = radius * (fused_depth - 1) / 2.0
    outers = _outer_multiplicities(count)
    # Solve e_j = A - growth * n_j with sum(e_j) = region_extent.
    target = (region_extent + growth * sum(outers)) / count
    raw = [target - growth * n for n in outers]
    extents = [max(min_extent, int(round(e))) for e in raw]
    _fix_sum(extents, region_extent, min_extent)
    return extents


def _fix_sum(extents: List[int], total: int, min_extent: int) -> None:
    """Adjust rounded extents in place so they sum to ``total``.

    Surplus is removed from the largest entries and deficit added to
    the smallest, preserving the balanced ordering as far as possible.
    """
    delta = total - sum(extents)
    guard = 0
    while delta != 0:
        if delta > 0:
            i = min(range(len(extents)), key=lambda j: extents[j])
            extents[i] += 1
            delta -= 1
        else:
            candidates = [
                j for j in range(len(extents)) if extents[j] > min_extent
            ]
            if not candidates:
                raise SpecificationError(
                    f"Cannot shrink extents {extents} to sum {total} with "
                    f"min extent {min_extent}"
                )
            i = max(candidates, key=lambda j: extents[j])
            extents[i] -= 1
            delta += 1
        guard += 1
        if guard > 10_000_000:  # pragma: no cover - safety net
            raise SpecificationError("Extent adjustment did not converge")


def balanced_tile_grid(
    region_shape: Sequence[int],
    counts: Sequence[int],
    radius: Sequence[int],
    fused_depth: int,
    min_extent: int = 1,
) -> TileGrid:
    """Balanced rectilinear tile grid over a region."""
    if not len(region_shape) == len(counts) == len(radius):
        raise SpecificationError(
            f"Rank mismatch: region {region_shape}, counts {counts}, "
            f"radius {radius}"
        )
    extents = [
        balanced_extents(
            int(region_shape[d]),
            int(counts[d]),
            int(radius[d]),
            fused_depth,
            min_extent,
        )
        for d in range(len(counts))
    ]
    return TileGrid(extents)


def balancing_factors(grid: TileGrid) -> List[Tuple[float, ...]]:
    """Per-dimension balancing factors ``f_d(j)`` of a tile grid.

    Factors are relative to the equal-tiling extent
    ``R_d / k_d``; the paper's ``f^k_d`` for a kernel is the factor of
    its position along each dimension.
    """
    factors: List[Tuple[float, ...]] = []
    for dim_extents, region_extent in zip(
        grid.extents, grid.region_shape
    ):
        base = region_extent / len(dim_extents)
        factors.append(tuple(e / base for e in dim_extents))
    return factors
