"""Baseline design: overlapped tiling with independent cones.

This reproduces the state-of-the-art the paper compares against (Nacci
et al., DAC'13): every tile is surrounded by ``r_d * h`` extra elements
on *both* sides of every dimension so its fused-iteration cone can be
computed with no inter-kernel communication.  The price is redundant
computation in the overlap, growing with cone depth and dimensionality.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SpecificationError
from repro.stencil.spec import StencilSpec
from repro.tiling.design import DesignKind, StencilDesign
from repro.tiling.tile import TileGrid


def make_baseline_design(
    spec: StencilSpec,
    tile_shape: Sequence[int],
    counts: Sequence[int],
    fused_depth: int,
    unroll: int = 1,
) -> StencilDesign:
    """Build an overlapped-tiling (iteration fusion) design.

    Args:
        spec: the stencil workload.
        tile_shape: output tile extents ``w_d`` (equal for all tiles).
        counts: tiles per dimension (``K = Π counts``).
        fused_depth: cone depth ``h``.
        unroll: processing elements per kernel.

    Returns:
        A :class:`StencilDesign` of kind ``BASELINE``.
    """
    if len(tile_shape) != spec.ndim or len(counts) != spec.ndim:
        raise SpecificationError(
            f"tile_shape {tile_shape} / counts {counts} must have "
            f"rank {spec.ndim}"
        )
    grid = TileGrid.uniform(tile_shape, counts)
    return StencilDesign(
        kind=DesignKind.BASELINE,
        spec=spec,
        fused_depth=fused_depth,
        tile_grid=grid,
        unroll=unroll,
    )
