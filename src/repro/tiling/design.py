"""The central design description: :class:`StencilDesign`.

A design fixes everything the paper's framework explores: the design
style (baseline overlapped tiling vs pipe-shared vs heterogeneous), the
fused iteration depth ``h``, the region's tile grid (``K`` parallel
kernels and their tile extents), and the per-kernel unroll ``N_PE``.

The analytical model, the cycle simulator, the resource estimator, and
the code generator all consume this one object, so its derived
quantities (per-iteration workloads, read/write footprints, pipe
traffic, local-buffer sizes) are the single source of geometric truth.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from functools import cached_property
from typing import List, Tuple

from repro.errors import SpecificationError
from repro.stencil.spec import StencilSpec
from repro.tiling.cone import (
    cone_footprint_shape,
    cone_read_shape,
    cone_redundant_cells,
    cone_total_cells,
    cone_workloads,
)
from repro.tiling.tile import TileGrid, TileInfo
from repro.utils.validation import check_positive


class DesignKind(enum.Enum):
    """Which architecture a design instantiates (Fig. 1 of the paper)."""

    #: Overlapped tiling with fully independent cones (Nacci, DAC'13).
    BASELINE = "baseline"

    #: Equal tiles bridged by pipes (Fig. 1(c)).
    PIPE_SHARED = "pipe-shared"

    #: Pipe sharing plus workload-balanced tile sizes (Fig. 1(d)).
    HETEROGENEOUS = "heterogeneous"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PipeFace:
    """A shared face between two adjacent tiles, served by a pipe pair.

    Attributes:
        low_index: grid index of the lower tile.
        high_index: grid index of the upper tile.
        dim: dimension across which the tiles are adjacent.
        halo_width: stencil radius along ``dim`` (strip width exchanged).
        face_cells: cells in one halo strip at the tiles' base shape.
    """

    low_index: Tuple[int, ...]
    high_index: Tuple[int, ...]
    dim: int
    halo_width: int
    face_cells: int


@dataclass(frozen=True)
class StencilDesign:
    """A fully-parameterized FPGA stencil accelerator design.

    Attributes:
        kind: architecture style.
        spec: the stencil workload.
        fused_depth: ``h``, iterations fused on-chip per block.
        tile_grid: region partition into ``K`` kernels.
        unroll: processing elements per kernel (``N_PE``).
        pipe_depth: FIFO depth of each generated pipe (packets).
    """

    kind: DesignKind
    spec: StencilSpec
    fused_depth: int
    tile_grid: TileGrid
    unroll: int = 1
    pipe_depth: int = 512

    def __post_init__(self) -> None:
        check_positive("fused_depth", self.fused_depth)
        check_positive("unroll", self.unroll)
        check_positive("pipe_depth", self.pipe_depth)
        if self.tile_grid.ndim != self.spec.ndim:
            raise SpecificationError(
                f"Tile grid rank {self.tile_grid.ndim} != stencil rank "
                f"{self.spec.ndim}"
            )
        if self.fused_depth > self.spec.iterations:
            raise SpecificationError(
                f"fused_depth {self.fused_depth} exceeds total iterations "
                f"{self.spec.iterations}"
            )
        for region_extent, grid_extent in zip(
            self.tile_grid.region_shape, self.spec.grid_shape
        ):
            if region_extent > grid_extent:
                raise SpecificationError(
                    f"Region {self.tile_grid.region_shape} larger than "
                    f"grid {self.spec.grid_shape}"
                )
        if self.kind is DesignKind.BASELINE and not self.tile_grid.is_uniform:
            raise SpecificationError(
                "Baseline designs use uniform tile grids"
            )

    # -- basic properties ----------------------------------------------------

    @property
    def sharing(self) -> bool:
        """True when tiles exchange halos through pipes."""
        return self.kind is not DesignKind.BASELINE

    @property
    def parallelism(self) -> int:
        """``K``: kernels working in parallel."""
        return self.tile_grid.parallelism

    @property
    def radius(self) -> Tuple[int, ...]:
        """Stencil radius ``r_d``."""
        return self.spec.pattern.radius

    @cached_property
    def tiles(self) -> Tuple[TileInfo, ...]:
        """All tiles of the region."""
        return tuple(self.tile_grid.tiles())

    def signature(self) -> Tuple:
        """Canonical hashable identity of the design.

        Two designs with equal signatures are indistinguishable to the
        analytical model, the resource estimator, and the simulator, so
        the signature is the memoization key for all of them.  The
        tuple is cached on the instance (the dataclass is frozen, so it
        can never go stale).
        """
        cached = self.__dict__.get("_signature")
        if cached is None:
            cached = (
                self.kind.value,
                self.spec.signature(),
                self.fused_depth,
                self.tile_grid.signature(),
                self.unroll,
                self.pipe_depth,
            )
            object.__setattr__(self, "_signature", cached)
        return cached

    def describe(self) -> str:
        """Short human-readable design summary."""
        counts = "x".join(str(c) for c in self.tile_grid.counts)
        slowest = self.slowest_tile()
        size = "x".join(str(w) for w in slowest.shape)
        return (
            f"{self.kind} h={self.fused_depth} tile={size} "
            f"parallelism={counts} unroll={self.unroll}"
        )

    # -- per-tile cone geometry ------------------------------------------------

    def cone_sides(self, tile: TileInfo) -> Tuple[int, ...]:
        """Per-dim number of sides requiring cone expansion.

        In the baseline every side expands (tiles are independent); in
        the sharing designs only region-outer sides do.
        """
        if self.sharing:
            return tile.outer
        return (2,) * self.spec.ndim

    def halo_sides(self, tile: TileInfo) -> Tuple[int, ...]:
        """Per-dim number of single-halo (pipe-served) sides."""
        if self.sharing:
            return tile.shared
        return (0,) * self.spec.ndim

    def footprint_shape(
        self, tile: TileInfo, iteration: int
    ) -> Tuple[int, ...]:
        """Cells computed at fused iteration ``iteration`` (1-based)."""
        return cone_footprint_shape(
            tile.shape,
            self.radius,
            self.cone_sides(tile),
            self.fused_depth,
            iteration,
        )

    def tile_workloads(self, tile: TileInfo) -> List[int]:
        """Cells computed per fused iteration, ``i = 1..h``."""
        return cone_workloads(
            tile.shape, self.radius, self.cone_sides(tile), self.fused_depth
        )

    def tile_compute_cells(self, tile: TileInfo) -> int:
        """Total cells computed by one tile over a fused block."""
        return cone_total_cells(
            tile.shape, self.radius, self.cone_sides(tile), self.fused_depth
        )

    def tile_redundant_cells(self, tile: TileInfo) -> int:
        """Redundant cells of one tile over a fused block."""
        return cone_redundant_cells(
            tile.shape, self.radius, self.cone_sides(tile), self.fused_depth
        )

    def tile_read_shape(self, tile: TileInfo) -> Tuple[int, ...]:
        """Extent of the tile's initial global-memory read."""
        return cone_read_shape(
            tile.shape,
            self.radius,
            self.cone_sides(tile),
            self.fused_depth,
            self.halo_sides(tile),
        )

    def tile_read_cells(self, tile: TileInfo) -> int:
        """Cells loaded from global memory per block."""
        return math.prod(self.tile_read_shape(tile))

    def tile_read_bytes(self, tile: TileInfo) -> int:
        """Bytes loaded per block (all fields plus aux inputs)."""
        per_cell = self.spec.cell_state_bytes + self.spec.element_bytes * len(
            self.spec.pattern.aux
        )
        return self.tile_read_cells(tile) * per_cell

    def tile_write_bytes(self, tile: TileInfo) -> int:
        """Bytes written back per block (output cells, all fields)."""
        return tile.cells * self.spec.cell_state_bytes

    def tile_local_cells(self, tile: TileInfo) -> int:
        """Local-buffer capacity in cells (covers the read footprint)."""
        return self.tile_read_cells(tile)

    # -- pipe traffic ----------------------------------------------------------

    def tile_share_cells(self, tile: TileInfo, iteration: int) -> int:
        """Cells this tile *receives* through pipes before iteration ``i``.

        Iteration 1 consumes the globally-read halo, so it receives
        nothing; iterations ``2..h`` each receive a radius-wide strip
        along every pipe-served face, sized to that iteration's
        footprint in the transverse dimensions.
        """
        if not self.sharing or iteration <= 1:
            return 0
        footprint = self.footprint_shape(tile, iteration)
        total = 0
        for d, (r, n_shared) in enumerate(
            zip(self.radius, self.halo_sides(tile))
        ):
            if n_shared == 0 or r == 0:
                continue
            transverse = math.prod(
                footprint[j] for j in range(self.spec.ndim) if j != d
            )
            total += n_shared * r * transverse
        return total * self.spec.pattern.num_fields

    def tile_share_total(self, tile: TileInfo) -> int:
        """Total cells received through pipes over one fused block."""
        return sum(
            self.tile_share_cells(tile, i)
            for i in range(1, self.fused_depth + 1)
        )

    @cached_property
    def pipe_faces(self) -> Tuple[PipeFace, ...]:
        """All shared faces (each served by a read/write pipe pair)."""
        if not self.sharing:
            return ()
        faces: List[PipeFace] = []
        for low, high, d in self.tile_grid.neighbors():
            r = self.radius[d]
            if r == 0:
                continue
            transverse = math.prod(
                min(low.shape[j], high.shape[j])
                for j in range(self.spec.ndim)
                if j != d
            )
            faces.append(
                PipeFace(
                    low_index=low.index,
                    high_index=high.index,
                    dim=d,
                    halo_width=r,
                    face_cells=r * transverse,
                )
            )
        return tuple(faces)

    @property
    def num_pipes(self) -> int:
        """Total one-directional pipes (two per shared face)."""
        return 2 * len(self.pipe_faces)

    def peak_face_transfer_cells(self) -> int:
        """Largest single-face halo transfer across all tiles/iterations.

        Used to size pipe FIFO depths: the deepest a single pipe
        fills is one face's strip for the earliest (widest-footprint)
        shared iteration.  Each field travels through its own pipe, so
        the count is per field.
        """
        if not self.sharing or self.fused_depth < 2:
            return 0
        peak = 0
        for tile in self.tiles:
            footprint = self.footprint_shape(tile, 2)
            for d, (r, n_shared) in enumerate(
                zip(self.radius, self.halo_sides(tile))
            ):
                if n_shared == 0 or r == 0:
                    continue
                transverse = math.prod(
                    footprint[j]
                    for j in range(self.spec.ndim)
                    if j != d
                )
                peak = max(peak, r * transverse)
        return peak

    # -- region/block aggregation ------------------------------------------------

    def region_compute_cells(self) -> int:
        """Cells computed by all kernels in one fused block."""
        return sum(self.tile_compute_cells(t) for t in self.tiles)

    def region_useful_cells(self) -> int:
        """Useful cell-updates per block (``h * region cells``)."""
        return self.fused_depth * math.prod(self.tile_grid.region_shape)

    def region_redundant_cells(self) -> int:
        """Redundant cell-updates per block."""
        return sum(self.tile_redundant_cells(t) for t in self.tiles)

    def redundancy_ratio(self) -> float:
        """Redundant / useful computation (the paper's motivation metric)."""
        useful = self.region_useful_cells()
        return self.region_redundant_cells() / useful if useful else 0.0

    def slowest_tile(self) -> TileInfo:
        """The kernel with the largest total computation (sets the barrier)."""
        return max(self.tiles, key=self.tile_compute_cells)

    def num_spatial_regions(self) -> int:
        """Regions needed to cover the grid (ceil per dimension)."""
        return math.prod(
            math.ceil(w / r)
            for w, r in zip(self.spec.grid_shape, self.tile_grid.region_shape)
        )

    def num_temporal_blocks(self) -> int:
        """Fused blocks needed to reach ``H`` iterations."""
        return math.ceil(self.spec.iterations / self.fused_depth)

    def num_blocks(self) -> int:
        """Total region-blocks executed (``N_region``, integer form)."""
        return self.num_spatial_regions() * self.num_temporal_blocks()

    def num_blocks_paper(self) -> float:
        """``N_region`` exactly as Eq. 2 computes it (real-valued)."""
        grid_cells = math.prod(self.spec.grid_shape)
        slowest = self.slowest_tile()
        tile_cells = math.prod(slowest.shape)
        return (
            self.spec.iterations
            * grid_cells
            / (self.fused_depth * self.parallelism * tile_cells)
        )

    # -- convenience -----------------------------------------------------------

    def with_fused_depth(self, fused_depth: int) -> "StencilDesign":
        """Copy with a different cone depth ``h``."""
        return replace(self, fused_depth=fused_depth)

    def with_tile_grid(self, tile_grid: TileGrid) -> "StencilDesign":
        """Copy with a different tile grid."""
        return replace(self, tile_grid=tile_grid)


def auto_pipe_depth(
    design: StencilDesign, minimum: int = 8, maximum: int = 32
) -> int:
    """FIFO depth sized for a design's halo streams.

    Rounded up to a power of two (how HLS implements FIFO depths) and
    capped so the FIFOs stay in SRL/LUTRAM territory: a pipe never
    needs to hold a whole strip — the consumer drains it during its
    interior phase, so the depth only covers producer/consumer rate
    slack, and keeping it shallow is what makes pipes "consume much
    fewer on-chip memory resources" than the overlap storage they
    replace.
    """
    peak = max(minimum, min(maximum, design.peak_face_transfer_cells()))
    depth = 1
    while depth < peak:
        depth *= 2
    return depth
