"""Iteration-fusion cone geometry (Fig. 1(a)/(b) of the paper).

Fusing ``h`` iterations on-chip means a tile's iteration ``i`` (counted
``1..h``) must compute a footprint that still carries enough halo for
the remaining ``h - i`` iterations.  Across a side where neighbor data
is unavailable the footprint extends by ``r_d * (h - i)``; across a
side served by pipes (or adjacent within the same kernel) it does not
extend at all.

All functions take the per-dimension *side multiplicity* ``sides_d``
(how many of the tile's two sides in dimension ``d`` require cone
expansion): 2 for a fully independent baseline tile, 0 for a fully
interior pipe-shared tile, 1 for a region-corner tile in the sharing
designs.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import SpecificationError


def _check(
    shape: Sequence[int], radius: Sequence[int], sides: Sequence[int]
) -> None:
    if not len(shape) == len(radius) == len(sides):
        raise SpecificationError(
            f"Rank mismatch: shape {shape}, radius {radius}, sides {sides}"
        )
    for n in sides:
        if n not in (0, 1, 2):
            raise SpecificationError(f"Side multiplicity must be 0/1/2: {sides}")


def cone_footprint_shape(
    shape: Sequence[int],
    radius: Sequence[int],
    sides: Sequence[int],
    fused_depth: int,
    iteration: int,
) -> Tuple[int, ...]:
    """Footprint computed at fused iteration ``iteration`` (1-based).

    Args:
        shape: tile output extents ``w_d``.
        radius: stencil radius ``r_d``.
        sides: per-dim count of cone-expanding sides.
        fused_depth: ``h``.
        iteration: which fused iteration, ``1 <= iteration <= h``.
    """
    _check(shape, radius, sides)
    if not 1 <= iteration <= fused_depth:
        raise SpecificationError(
            f"iteration {iteration} outside 1..{fused_depth}"
        )
    remaining = fused_depth - iteration
    return tuple(
        w + r * remaining * n for w, r, n in zip(shape, radius, sides)
    )


def cone_read_shape(
    shape: Sequence[int],
    radius: Sequence[int],
    sides: Sequence[int],
    fused_depth: int,
    halo_sides: Sequence[int] = (),
) -> Tuple[int, ...]:
    """Extent of the initial global-memory read for one tile.

    The tile must load the iteration-0 data feeding its first fused
    iteration: the output shape grown by ``r_d * h`` across every
    cone-expanding side, plus a single-``r_d`` halo across each side
    listed in ``halo_sides`` (the pipe-shared sides, whose iteration-0
    values also come from global memory at block start).

    Args:
        halo_sides: per-dim count of single-halo sides (defaults to 0).
    """
    _check(shape, radius, sides)
    halos = tuple(halo_sides) if halo_sides else (0,) * len(shape)
    if len(halos) != len(shape):
        raise SpecificationError(
            f"halo_sides rank mismatch: {halo_sides} vs shape {shape}"
        )
    return tuple(
        w + r * fused_depth * n + r * m
        for w, r, n, m in zip(shape, radius, sides, halos)
    )


def cone_workloads(
    shape: Sequence[int],
    radius: Sequence[int],
    sides: Sequence[int],
    fused_depth: int,
) -> List[int]:
    """Cells computed at each fused iteration ``1..h`` (Eq. 8's product)."""
    return [
        math.prod(
            cone_footprint_shape(shape, radius, sides, fused_depth, i)
        )
        for i in range(1, fused_depth + 1)
    ]


def cone_total_cells(
    shape: Sequence[int],
    radius: Sequence[int],
    sides: Sequence[int],
    fused_depth: int,
) -> int:
    """Total cells computed over the whole fused block."""
    return sum(cone_workloads(shape, radius, sides, fused_depth))


def cone_redundant_cells(
    shape: Sequence[int],
    radius: Sequence[int],
    sides: Sequence[int],
    fused_depth: int,
) -> int:
    """Redundant cells: total computed minus the useful ``h * Π w_d``."""
    useful = fused_depth * math.prod(shape)
    return cone_total_cells(shape, radius, sides, fused_depth) - useful
