"""Executable (Python) backend of the automatic code generator.

The OpenCL backend (:mod:`repro.codegen.kernel_gen`) emits source for a
toolchain we cannot run here.  This backend emits the *same design* as
executable Python kernel functions — one per tile, structured exactly
like the OpenCL kernels (burst read into local buffers, the fused
iteration loop with per-iteration boundary arithmetic, frozen-cell
clipping, per-dimension pipe halo exchange, burst write-back) — so the
code generator's semantics can be executed and checked bit-for-bit
against the reference.

Each generated kernel is a *generator function*: pipe operations use
non-blocking try/retry and ``yield`` when they would block, so the
cooperative scheduler in :mod:`repro.codegen.pyexec` can interleave the
region's kernels the way concurrently-running compute units would.

All geometry (tile offsets, cone growth flags, tap offsets and
coefficients) is baked into the emitted source as constants, mirroring
how the OpenCL generator bakes them into macros.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.codegen.emit import PyWriter
from repro.codegen.kernel_gen import kernel_name
from repro.codegen.pipe_gen import pipe_name
from repro.tiling.design import StencilDesign
from repro.tiling.tile import TileInfo

Index = Tuple[int, ...]


def field_pipe_name(src: Index, dst: Index, dim: int, field: str) -> str:
    """Pipe symbol for one field's strip stream across one face."""
    return f"{pipe_name(src, dst, dim)}_{field}"


def _slices(ndim: int, lo_expr: str, hi_expr: str, base: str) -> str:
    """Local-buffer slice tuple ``[lo_d - b_lo_d : hi_d - b_lo_d, ...]``."""
    parts = [
        f"{lo_expr}{d} - {base}{d}:{hi_expr}{d} - {base}{d}"
        for d in range(ndim)
    ]
    return "[" + ", ".join(parts) + "]"


def _tap_slice(ndim: int, offset: Tuple[int, ...]) -> str:
    """Slice tuple for a tap: the compute box shifted by ``offset``."""
    parts = []
    for d in range(ndim):
        shift = offset[d]
        sign = f" + {shift}" if shift > 0 else (
            f" - {-shift}" if shift < 0 else ""
        )
        parts.append(f"c_lo{d} - b_lo{d}{sign}:c_hi{d} - b_lo{d}{sign}")
    return "[" + ", ".join(parts) + "]"


def generate_python_kernel(design: StencilDesign, tile: TileInfo) -> str:
    """Emit one tile's kernel as Python generator-function source."""
    spec = design.spec
    pattern = spec.pattern
    ndim = spec.ndim
    radius = design.radius
    counts = design.tile_grid.counts
    dtype = "float64" if spec.element_bytes == 8 else "float32"
    name = kernel_name(design, tile)

    # Static per-dimension role flags.
    grow_lo = []
    grow_hi = []
    halo_lo = []
    halo_hi = []
    for d in range(ndim):
        low_outer = tile.index[d] == 0
        high_outer = tile.index[d] == counts[d] - 1
        if design.sharing:
            grow_lo.append(radius[d] if low_outer else 0)
            grow_hi.append(radius[d] if high_outer else 0)
            halo_lo.append(0 if low_outer else radius[d])
            halo_hi.append(0 if high_outer else radius[d])
        else:
            grow_lo.append(radius[d])
            grow_hi.append(radius[d])
            halo_lo.append(0)
            halo_hi.append(0)

    w = PyWriter()
    w.open_block(f"def {name}(ctx)")
    w.comment(
        f"Tile {tile.index}: shape {tile.shape}, cone growth "
        f"lo={tuple(grow_lo)} hi={tuple(grow_hi)}."
    )
    w.line("o = ctx.origin")
    w.line("hb = ctx.h_block")
    # Buffer bounds: tile grown by the full-depth margin, domain-clipped.
    for d in range(ndim):
        margin_lo = grow_lo[d] * design.fused_depth + halo_lo[d]
        margin_hi = grow_hi[d] * design.fused_depth + halo_hi[d]
        lo = f"o[{d}] + {tile.offset[d]}"
        hi = f"o[{d}] + {tile.offset[d] + tile.shape[d]}"
        w.line(f"b_lo{d} = max(0, {lo} - {margin_lo})")
        w.line(
            f"b_hi{d} = min({spec.grid_shape[d]}, {hi} + {margin_hi})"
        )
    buffer_slice = "[" + ", ".join(
        f"b_lo{d}:b_hi{d}" for d in range(ndim)
    ) + "]"
    w.comment("Burst-read the footprint into local buffers.")
    for field in pattern.fields:
        w.line(f"buf_{field} = ctx.current['{field}']{buffer_slice}.copy()")
    for aux in pattern.aux:
        w.line(f"buf_{aux} = ctx.aux['{aux}']{buffer_slice}.copy()")

    w.open_block("for it in range(hb)")
    w.line("rem = hb - 1 - it")
    w.comment("Footprint (domain-clipped) and computed (frozen-clipped) boxes.")
    for d in range(ndim):
        lo = f"o[{d}] + {tile.offset[d]}"
        hi = f"o[{d}] + {tile.offset[d] + tile.shape[d]}"
        w.line(f"f_lo{d} = max(0, {lo} - {grow_lo[d]} * rem)")
        w.line(
            f"f_hi{d} = min({spec.grid_shape[d]}, {hi} + "
            f"{grow_hi[d]} * rem)"
        )
        w.line(f"c_lo{d} = max({radius[d]}, f_lo{d})")
        w.line(
            f"c_hi{d} = min({spec.grid_shape[d] - radius[d]}, f_hi{d})"
        )
    non_empty = " and ".join(
        f"c_lo{d} < c_hi{d}" for d in range(ndim)
    )
    w.open_block(f"if {non_empty}")
    shape_expr = ", ".join(f"c_hi{d} - c_lo{d}" for d in range(ndim))
    for field in pattern.fields:
        update = pattern.updates[field]
        w.line(
            f"acc_{field} = np.full(({shape_expr},), "
            f"{update.constant!r}, dtype=np.{dtype})"
        )
        for tap in update.taps:
            view = f"buf_{tap.source}{_tap_slice(ndim, tap.offset)}"
            if tap.coeff == 1.0:
                w.line(f"acc_{field} += {view}")
            else:
                w.line(
                    f"acc_{field} += np.{dtype}({tap.coeff!r}) * {view}"
                )
    computed_slice = _slices(ndim, "c_lo", "c_hi", "b_lo")
    for field in pattern.fields:
        w.line(f"out_{field} = buf_{field}.copy()")
        w.line(f"out_{field}{computed_slice} = acc_{field}")
    for field in pattern.fields:
        w.line(f"buf_{field} = out_{field}")
    w.close_block()

    has_faces = any(
        tile.index in (face.low_index, face.high_index)
        for face in design.pipe_faces
    )
    if design.sharing and has_faces:
        w.open_block("if it + 1 < hb")
        _emit_halo_exchange(w, design, tile, grow_lo, grow_hi)
        w.close_block()
    w.close_block()

    w.comment("Burst-write the tile's output cells back.")
    out_slice_global = "[" + ", ".join(
        f"o[{d}] + {tile.offset[d]}:o[{d}] + "
        f"{tile.offset[d] + tile.shape[d]}"
        for d in range(ndim)
    ) + "]"
    out_slice_local = "[" + ", ".join(
        f"o[{d}] + {tile.offset[d]} - b_lo{d}:o[{d}] + "
        f"{tile.offset[d] + tile.shape[d]} - b_lo{d}"
        for d in range(ndim)
    ) + "]"
    for field in pattern.fields:
        w.line(
            f"ctx.next['{field}']{out_slice_global} = "
            f"buf_{field}{out_slice_local}"
        )
    w.line("yield 'done'")
    w.close_block()
    return w.render()


def _emit_halo_exchange(
    w: CodeWriter,
    design: StencilDesign,
    tile: TileInfo,
    grow_lo: List[int],
    grow_hi: List[int],
) -> None:
    """Per-dimension ordered sends then receives for this tile."""
    spec = design.spec
    ndim = spec.ndim
    radius = design.radius
    counts = design.tile_grid.counts

    # Collect this tile's faces per dimension.
    faces_by_dim: Dict[int, List[Tuple[Index, bool]]] = {}
    for face in design.pipe_faces:
        if face.low_index == tile.index:
            faces_by_dim.setdefault(face.dim, []).append(
                (face.high_index, True)  # neighbor above, send our top
            )
        elif face.high_index == tile.index:
            faces_by_dim.setdefault(face.dim, []).append(
                (face.low_index, False)  # neighbor below, send our bottom
            )

    for d in sorted(faces_by_dim):
        r = radius[d]
        w.comment(f"Halo exchange, dimension {d}.")
        # Transverse extents: footprint, widened across already-
        # exchanged shared sides (t < d).
        for t in range(ndim):
            if t == d:
                continue
            lo_ext = (
                radius[t]
                if t < d and tile.index[t] > 0
                else 0
            )
            hi_ext = (
                radius[t]
                if t < d and tile.index[t] < counts[t] - 1
                else 0
            )
            w.line(f"s_lo{t} = max(b_lo{t}, f_lo{t} - {lo_ext})")
            w.line(f"s_hi{t} = min(b_hi{t}, f_hi{t} + {hi_ext})")
        for neighbor, is_high_neighbor in faces_by_dim[d]:
            # Our strip just inside the shared face.
            face_expr = (
                f"o[{d}] + {tile.offset[d] + tile.shape[d]}"
                if is_high_neighbor
                else f"o[{d}] + {tile.offset[d]}"
            )
            if is_high_neighbor:
                w.line(f"s_lo{d} = {face_expr} - {r}")
                w.line(f"s_hi{d} = {face_expr}")
            else:
                w.line(f"s_lo{d} = {face_expr}")
                w.line(f"s_hi{d} = {face_expr} + {r}")
            slab_slice = _slices(ndim, "s_lo", "s_hi", "b_lo")
            lo_tuple = (
                "(" + ", ".join(f"s_lo{t}" for t in range(ndim)) + ",)"
            )
            for field in spec.pattern.fields:
                symbol = field_pipe_name(
                    tile.index, neighbor, d, field
                )
                w.line(
                    f"pkt = ({lo_tuple}, buf_{field}{slab_slice}.copy())"
                )
                w.open_block(
                    f"while not ctx.pipes['{symbol}'].try_write(pkt)"
                )
                w.line(f"yield 'full:{symbol}'")
                w.close_block()
        for neighbor, _is_high in faces_by_dim[d]:
            for field in spec.pattern.fields:
                symbol = field_pipe_name(
                    neighbor, tile.index, d, field
                )
                w.line(f"pkt = ctx.pipes['{symbol}'].try_read()")
                w.open_block("while pkt is None")
                w.line(f"yield 'empty:{symbol}'")
                w.line(f"pkt = ctx.pipes['{symbol}'].try_read()")
                w.close_block()
                w.line(
                    f"_place(buf_{field}, pkt, "
                    f"({', '.join(f'b_lo{t}' for t in range(ndim))},), "
                    f"({', '.join(f'b_hi{t}' for t in range(ndim))},))"
                )


_MODULE_PRELUDE = '''\
"""Auto-generated executable stencil kernels.  Do not edit."""

import numpy as np


def _place(buffer, packet, b_lo, b_hi):
    """Copy a received halo slab into the local buffer (clipped)."""
    lo, data = packet
    hi = tuple(l + s for l, s in zip(lo, data.shape))
    src = []
    dst = []
    for d in range(len(lo)):
        clip_lo = max(lo[d], b_lo[d])
        clip_hi = min(hi[d], b_hi[d])
        if clip_hi <= clip_lo:
            return
        src.append(slice(clip_lo - lo[d], clip_hi - lo[d]))
        dst.append(slice(clip_lo - b_lo[d], clip_hi - b_lo[d]))
    buffer[tuple(dst)] = data[tuple(src)]
'''


def generate_python_module(design: StencilDesign) -> str:
    """The full executable module: helpers plus one kernel per tile."""
    parts = [_MODULE_PRELUDE]
    for tile in design.tiles:
        parts.append(generate_python_kernel(design, tile))
    return "\n\n".join(parts)
