"""Host-program generator.

Emits the OpenCL host-side C program that drives the generated kernels:
buffer setup, the region/temporal-block loop structure of Fig. 4, the
per-region kernel launches (one per tile, issued back-to-back — the
sequential launch delay the paper observes), and the end-of-block
synchronization.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.codegen.emit import CodeWriter
from repro.tiling.design import StencilDesign

Index = Tuple[int, ...]


def generate_host_program(
    design: StencilDesign, kernel_names: Dict[Index, str]
) -> str:
    """The host C source for one design."""
    spec = design.spec
    writer = CodeWriter()
    writer.comment(
        f"Auto-generated host program for {spec.name} "
        f"({design.kind}, h={design.fused_depth})."
    )
    writer.line("#include <CL/cl.h>")
    writer.line('#include "stencil_host.h"')
    writer.line()
    writer.open_block("int main(int argc, char **argv)")
    writer.line(
        'cl_context ctx = stencil_create_context("xilinx_adm-pcie-7v3");'
    )
    writer.line("cl_command_queue queue = stencil_create_queue(ctx);")
    total_cells = spec.total_cells
    for field in spec.pattern.fields:
        writer.line(
            f"cl_mem d_{field} = stencil_alloc(ctx, "
            f"{total_cells} * sizeof(float));"
        )
        writer.line(
            f"cl_mem d_{field}_out = stencil_alloc(ctx, "
            f"{total_cells} * sizeof(float));"
        )
    for aux in spec.pattern.aux:
        writer.line(
            f"cl_mem d_{aux} = stencil_alloc(ctx, "
            f"{total_cells} * sizeof(float));"
        )
    writer.line()
    blocks = design.num_temporal_blocks()
    regions = design.num_spatial_regions()
    writer.comment(
        f"{blocks} temporal blocks x {regions} regions x "
        f"{design.parallelism} kernels."
    )
    writer.open_block(f"for (int block = 0; block < {blocks}; ++block)")
    writer.open_block(f"for (int region = 0; region < {regions}; ++region)")
    region_shape = design.tile_grid.region_shape
    writer.line(
        "int origin["
        + str(spec.ndim)
        + "]; stencil_region_origin(region, origin, "
        + ", ".join(str(r) for r in region_shape)
        + ");"
    )
    writer.comment(
        "Launch every tile kernel; launches are issued sequentially."
    )
    for tile in design.tiles:
        name = kernel_names[tile.index]
        offsets = ", ".join(
            f"origin[{d}] + {tile.offset[d]}" for d in range(spec.ndim)
        )
        writer.line(f"stencil_launch(queue, \"{name}\", {offsets});")
    writer.comment("Block barrier: all tiles must commit before the next.")
    writer.line("clFinish(queue);")
    writer.comment("Swap global ping-pong buffers.")
    for field in spec.pattern.fields:
        writer.line(f"stencil_swap(&d_{field}, &d_{field}_out);")
    writer.close_block()
    writer.close_block()
    writer.line("return 0;")
    writer.close_block()
    return writer.render()
