"""Data-sharing pipe generator (Section 5.2).

Pipes in OpenCL are one-directional, so each shared face of adjacent
kernels gets a read/write pair.  The generator emits the program-scope
pipe declarations and, per kernel, the send/receive loops for each of
its faces, with extents driven by the stencil boundary generator.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.codegen.boundary_gen import iteration_bounds
from repro.codegen.emit import CodeWriter
from repro.tiling.design import PipeFace, StencilDesign
from repro.tiling.tile import TileInfo

Index = Tuple[int, ...]


def _fmt_index(index: Index) -> str:
    return "_".join(str(i) for i in index)


def pipe_name(src: Index, dst: Index, dim: int) -> str:
    """Canonical pipe symbol for the ``src -> dst`` link across ``dim``."""
    return f"pipe_{_fmt_index(src)}_to_{_fmt_index(dst)}_d{dim}"


def generate_pipe_declarations(design: StencilDesign) -> str:
    """Program-scope pipe declarations for every shared face."""
    writer = CodeWriter()
    if not design.sharing:
        writer.comment("Baseline design: no inter-kernel pipes.")
        return writer.render()
    writer.comment(
        "OpenCL 2.0 pipes bridging adjacent tiles (two per face)."
    )
    element = "float" if design.spec.element_bytes == 4 else "double"
    for face in design.pipe_faces:
        for src, dst in (
            (face.low_index, face.high_index),
            (face.high_index, face.low_index),
        ):
            name = pipe_name(src, dst, face.dim)
            writer.line(
                f"pipe {element} {name} "
                f"__attribute__((xcl_reqd_pipe_depth({design.pipe_depth})));"
            )
    return writer.render()


def tile_pipe_endpoints(
    design: StencilDesign, tile: TileInfo
) -> Tuple[List[Tuple[PipeFace, str]], List[Tuple[PipeFace, str]]]:
    """(outgoing, incoming) pipe symbols of one tile's kernel."""
    outgoing: List[Tuple[PipeFace, str]] = []
    incoming: List[Tuple[PipeFace, str]] = []
    for face in design.pipe_faces:
        if face.low_index == tile.index:
            outgoing.append(
                (face, pipe_name(face.low_index, face.high_index, face.dim))
            )
            incoming.append(
                (face, pipe_name(face.high_index, face.low_index, face.dim))
            )
        elif face.high_index == tile.index:
            outgoing.append(
                (face, pipe_name(face.high_index, face.low_index, face.dim))
            )
            incoming.append(
                (face, pipe_name(face.low_index, face.high_index, face.dim))
            )
    return outgoing, incoming


def _face_loop(
    writer: CodeWriter,
    design: StencilDesign,
    tile: TileInfo,
    face: PipeFace,
    symbol: str,
    fields: Tuple[str, ...],
    send: bool,
) -> None:
    """Emit the nested loop moving one face's halo strips."""
    ndim = design.spec.ndim
    spec = iteration_bounds(design, tile)
    d = face.dim
    r = face.halo_width
    # The strip lies just inside (send) or just outside (receive) the
    # tile's fixed pipe-side margin in dimension ``d``.
    low_side = face.high_index == tile.index
    if send:
        strip_lo = f"{spec.lo_base[d]}" if low_side else (
            f"{spec.hi_base[d]} - {r}"
        )
    else:
        strip_lo = f"{spec.lo_base[d]} - {r}" if low_side else (
            f"{spec.hi_base[d]}"
        )
    index_vars = [f"x{t}" for t in range(ndim)]
    for t in range(ndim):
        if t == d:
            writer.open_block(
                f"for (int {index_vars[t]} = {strip_lo}; "
                f"{index_vars[t]} < {strip_lo} + {r}; ++{index_vars[t]})"
            )
        else:
            writer.open_block(
                f"for (int {index_vars[t]} = T_LO{t}(it); "
                f"{index_vars[t]} < T_HI{t}(it); ++{index_vars[t]})"
            )
    subscript = "".join(f"[{v}]" for v in index_vars)
    for field in fields:
        if send:
            writer.line(
                f"write_pipe_block({symbol}, &buf_{field}{subscript});"
            )
        else:
            writer.line(
                f"read_pipe_block({symbol}, &buf_{field}{subscript});"
            )
    for _ in range(ndim):
        writer.close_block()


def generate_send_block(
    design: StencilDesign, tile: TileInfo
) -> str:
    """Send loops pushing this kernel's boundary strips to neighbors."""
    writer = CodeWriter()
    outgoing, _ = tile_pipe_endpoints(design, tile)
    if not outgoing:
        writer.comment("No outgoing pipes for this tile.")
        return writer.render()
    writer.comment("Push freshly computed boundary strips to neighbors.")
    for face, symbol in outgoing:
        _face_loop(
            writer,
            design,
            tile,
            face,
            symbol,
            design.spec.pattern.fields,
            send=True,
        )
    return writer.render()


def generate_receive_block(
    design: StencilDesign, tile: TileInfo
) -> str:
    """Receive loops draining neighbor halos into the local buffer."""
    writer = CodeWriter()
    _, incoming = tile_pipe_endpoints(design, tile)
    if not incoming:
        writer.comment("No incoming pipes for this tile.")
        return writer.render()
    writer.comment("Drain neighbor halo strips for the next iteration.")
    for face, symbol in incoming:
        _face_loop(
            writer,
            design,
            tile,
            face,
            symbol,
            design.spec.pattern.fields,
            send=False,
        )
    return writer.render()
