"""Source-emission helpers: indentation-aware writer and literals."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def float_literal(value: float) -> str:
    """A C float literal (with ``f`` suffix) for a coefficient."""
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}f"
    return f"{value!r}f"


def index_expression(
    index_vars: Sequence[str], offsets: Sequence[int]
) -> str:
    """Subscript chain like ``[i - 1][j + 2]`` for an offset tap."""
    parts: List[str] = []
    for var, off in zip(index_vars, offsets):
        if off == 0:
            parts.append(f"[{var}]")
        elif off > 0:
            parts.append(f"[{var} + {off}]")
        else:
            parts.append(f"[{var} - {-off}]")
    return "".join(parts)


class CodeWriter:
    """Accumulates indented C source lines."""

    def __init__(self, indent: str = "    "):
        self._indent_unit = indent
        self._level = 0
        self._lines: List[str] = []

    def line(self, text: str = "") -> "CodeWriter":
        """Emit one line at the current indent (blank when empty)."""
        if text:
            self._lines.append(self._indent_unit * self._level + text)
        else:
            self._lines.append("")
        return self

    def lines(self, texts: Iterable[str]) -> "CodeWriter":
        """Emit multiple lines."""
        for text in texts:
            self.line(text)
        return self

    def open_block(self, header: str) -> "CodeWriter":
        """Emit ``header {`` and indent."""
        self.line(f"{header} {{")
        self._level += 1
        return self

    def close_block(self, suffix: str = "") -> "CodeWriter":
        """Dedent and emit ``}``."""
        self._level = max(0, self._level - 1)
        self.line(f"}}{suffix}")
        return self

    def comment(self, text: str) -> "CodeWriter":
        """Emit a ``//`` comment line."""
        return self.line(f"// {text}")

    def raw(self, source: str) -> "CodeWriter":
        """Splice pre-rendered source, re-indenting each line."""
        for line in source.splitlines():
            self.line(line) if line.strip() else self.line()
        return self

    def render(self) -> str:
        """The accumulated source."""
        return "\n".join(self._lines) + "\n"


class PyWriter(CodeWriter):
    """Indentation-aware writer emitting *Python* source.

    Blocks open with ``header:`` and close by dedenting (no brace), and
    comments use ``#``.
    """

    def open_block(self, header: str) -> "PyWriter":
        """Emit ``header:`` and indent."""
        self.line(f"{header}:")
        self._level += 1
        return self

    def close_block(self, suffix: str = "") -> "PyWriter":
        """Dedent (Python blocks close implicitly)."""
        self._level = max(0, self._level - 1)
        return self

    def comment(self, text: str) -> "PyWriter":
        """Emit a ``#`` comment line."""
        return self.line(f"# {text}")
