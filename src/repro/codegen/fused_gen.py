"""Fused stencil operation generator (Section 5.2).

Wraps the original stencil update in the iteration-fusion loop, with
the loop bounds provided by the stencil boundary generator, the data
arrays promoted to ``__local`` memory, and the inner loop unrolled by
the design's ``N_PE``.
"""

from __future__ import annotations

from typing import Sequence

from repro.codegen.emit import CodeWriter, float_literal, index_expression
from repro.codegen.pipe_gen import generate_receive_block, generate_send_block
from repro.stencil.pattern import StencilPattern
from repro.tiling.design import StencilDesign
from repro.tiling.tile import TileInfo


def update_statement(
    pattern: StencilPattern,
    field: str,
    index_vars: Sequence[str],
    out_prefix: str = "new_",
    in_prefix: str = "buf_",
    aux_prefix: str = "buf_",
) -> str:
    """The single-cell update statement for one field.

    Renders the pattern's taps in declaration order, e.g.::

        new_a[x0][x1] = 0.2f * buf_a[x0][x1] + 0.2f * buf_a[x0 - 1][x1] ...;
    """
    update = pattern.updates[field]
    terms = []
    for tap in update.taps:
        prefix = aux_prefix if tap.source in pattern.aux else in_prefix
        ref = f"{prefix}{tap.source}{index_expression(index_vars, tap.offset)}"
        if tap.coeff == 1.0:
            terms.append(ref)
        else:
            terms.append(f"{float_literal(tap.coeff)} * {ref}")
    if update.constant != 0.0:
        terms.append(float_literal(update.constant))
    zero = (0,) * pattern.ndim
    target = f"{out_prefix}{field}{index_expression(index_vars, zero)}"
    return f"{target} = {' + '.join(terms)};"


def generate_fused_loop(
    design: StencilDesign, tile: TileInfo
) -> str:
    """The fused-iteration loop body of one tile's kernel.

    Per fused iteration: compute the boundary strips first and push
    them into the pipes (so neighbors' next iterations are fed), then
    compute the interior while neighbor strips stream in, then drain
    the incoming pipes and swap the ping-pong buffers.
    """
    pattern = design.spec.pattern
    ndim = design.spec.ndim
    index_vars = [f"x{d}" for d in range(ndim)]
    writer = CodeWriter()
    writer.open_block(
        f"for (int it = 0; it < {design.fused_depth}; ++it)"
    )
    for d in range(ndim):
        header = (
            f"for (int {index_vars[d]} = T_LO{d}(it); "
            f"{index_vars[d]} < T_HI{d}(it); ++{index_vars[d]})"
        )
        if d == ndim - 1 and design.unroll > 1:
            writer.line(
                f"__attribute__((opencl_unroll_hint({design.unroll})))"
            )
        writer.open_block(header)
    writer.comment("Skip frozen cells at the physical array border.")
    guard = " && ".join(
        f"g{d} + {index_vars[d]} >= {design.radius[d]} && "
        f"g{d} + {index_vars[d]} < W{d} - {design.radius[d]}"
        for d in range(ndim)
    )
    writer.open_block(f"if ({guard})")
    for field in pattern.fields:
        writer.line(update_statement(pattern, field, index_vars))
    writer.close_block()
    zero_subscript = "".join(f"[{v}]" for v in index_vars)
    writer.open_block("else")
    for field in pattern.fields:
        writer.line(
            f"new_{field}{zero_subscript} = buf_{field}{zero_subscript};"
        )
    writer.close_block()
    for _ in range(ndim):
        writer.close_block()
    if design.sharing:
        writer.raw(generate_send_block(design, tile))
    writer.comment("Ping-pong the tile buffers.")
    for field in pattern.fields:
        writer.line(f"swap_buffers(&buf_{field}, &new_{field});")
    if design.sharing:
        writer.open_block(f"if (it + 1 < {design.fused_depth})")
        writer.raw(generate_receive_block(design, tile))
        writer.close_block()
    writer.close_block()
    return writer.render()
