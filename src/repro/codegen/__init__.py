"""Automatic OpenCL code generation (Section 5.2 of the paper).

Three generators — stencil boundary, data-sharing pipes, and fused
stencil operation — whose outputs :mod:`repro.codegen.kernel_gen`
merges into per-tile OpenCL kernels, plus a host-program generator.
"""

from repro.codegen.emit import CodeWriter, float_literal
from repro.codegen.boundary_gen import (
    BoundarySpec,
    generate_boundary_macros,
    iteration_bounds,
)
from repro.codegen.pipe_gen import (
    generate_pipe_declarations,
    pipe_name,
    tile_pipe_endpoints,
)
from repro.codegen.fused_gen import (
    generate_fused_loop,
    update_statement,
)
from repro.codegen.kernel_gen import (
    GeneratedProgram,
    generate_kernel,
    generate_program,
)
from repro.codegen.host_gen import generate_host_program
from repro.codegen.program_gen import (
    GeneratedPipeline,
    forward_pipe_name,
    generate_program_pipeline,
    spill_buffer_name,
)
from repro.codegen.pygen import (
    field_pipe_name,
    generate_python_kernel,
    generate_python_module,
)
from repro.codegen.pyexec import GeneratedDesignExecutor, execute_generated

__all__ = [
    "CodeWriter",
    "float_literal",
    "BoundarySpec",
    "generate_boundary_macros",
    "iteration_bounds",
    "generate_pipe_declarations",
    "pipe_name",
    "tile_pipe_endpoints",
    "generate_fused_loop",
    "update_statement",
    "GeneratedProgram",
    "generate_kernel",
    "generate_program",
    "generate_host_program",
    "GeneratedPipeline",
    "forward_pipe_name",
    "generate_program_pipeline",
    "spill_buffer_name",
    "field_pipe_name",
    "generate_python_kernel",
    "generate_python_module",
    "GeneratedDesignExecutor",
    "execute_generated",
]
