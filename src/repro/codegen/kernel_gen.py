"""Kernel assembly: merge the three generated parts into OpenCL kernels.

One ``__kernel`` function is produced per tile of the region (each tile
maps to its own compute unit, as in Fig. 4), and the whole program —
pipe declarations plus all kernels — is returned as a single OpenCL-C
translation unit together with the generated host program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.codegen.boundary_gen import generate_boundary_macros
from repro.codegen.emit import CodeWriter
from repro.codegen.fused_gen import generate_fused_loop
from repro.codegen.host_gen import generate_host_program
from repro.codegen.pipe_gen import generate_pipe_declarations
from repro.tiling.design import StencilDesign
from repro.tiling.tile import TileInfo

Index = Tuple[int, ...]


def kernel_name(design: StencilDesign, tile: TileInfo) -> str:
    """Canonical kernel symbol for one tile."""
    suffix = "_".join(str(i) for i in tile.index)
    return f"stencil_{design.spec.name.replace('-', '_')}_k{suffix}"


@dataclass(frozen=True)
class GeneratedProgram:
    """The code generator's output for one design.

    Attributes:
        kernel_source: the OpenCL-C translation unit (pipes + kernels).
        host_source: the host-side C program.
        kernel_names: kernel symbol per tile index.
    """

    kernel_source: str
    host_source: str
    kernel_names: Dict[Index, str]

    @property
    def num_kernels(self) -> int:
        """Number of generated compute kernels."""
        return len(self.kernel_names)


def _element_type(design: StencilDesign) -> str:
    return "float" if design.spec.element_bytes == 4 else "double"


def generate_kernel(design: StencilDesign, tile: TileInfo) -> str:
    """One tile's complete ``__kernel`` function."""
    pattern = design.spec.pattern
    ndim = design.spec.ndim
    element = _element_type(design)
    read_shape = design.tile_read_shape(tile)
    dims = "".join(f"[{extent}]" for extent in read_shape)
    writer = CodeWriter()
    writer.raw(generate_boundary_macros(design, tile))
    args: List[str] = []
    for field in pattern.fields:
        args.append(f"__global {element} *restrict g_{field}")
        args.append(f"__global {element} *restrict g_{field}_out")
    for aux in pattern.aux:
        args.append(f"__global const {element} *restrict g_{aux}")
    for d in range(ndim):
        args.append(f"const int g{d}")
    arg_list = ",\n        ".join(args)
    writer.line("__attribute__((reqd_work_group_size(1, 1, 1)))")
    writer.open_block(
        f"__kernel void {kernel_name(design, tile)}(\n        {arg_list})"
    )
    writer.comment(
        f"Tile {tile.index}: output {tile.shape}, local footprint "
        f"{read_shape}."
    )
    for field in pattern.fields:
        writer.line(f"__local {element} buf_{field}{dims};")
        writer.line(f"__local {element} new_{field}{dims};")
    for aux in pattern.aux:
        writer.line(f"__local {element} buf_{aux}{dims};")
    writer.comment("Burst-read the tile footprint from global memory.")
    for field in pattern.fields:
        writer.line(
            f"burst_read(g_{field}, (__local {element} *)buf_{field}, "
            f"{design.tile_read_cells(tile)});"
        )
    for aux in pattern.aux:
        writer.line(
            f"burst_read(g_{aux}, (__local {element} *)buf_{aux}, "
            f"{design.tile_read_cells(tile)});"
        )
    writer.raw(generate_fused_loop(design, tile))
    writer.comment("Burst-write the tile's output cells back.")
    for field in pattern.fields:
        writer.line(
            f"burst_write(g_{field}_out, (__local {element} *)buf_{field}, "
            f"{tile.cells});"
        )
    writer.close_block()
    # Undefine the tile-local boundary macros so kernels can share a
    # translation unit.
    for d in range(ndim):
        writer.line(f"#undef T_LO{d}")
        writer.line(f"#undef T_HI{d}")
        writer.line(f"#undef T_EXT{d}")
    return writer.render()


def generate_program(design: StencilDesign) -> GeneratedProgram:
    """The full OpenCL program and host code for a design."""
    writer = CodeWriter()
    writer.comment(
        f"Auto-generated {design.kind} design for "
        f"{design.spec.name}: h={design.fused_depth}, "
        f"K={design.parallelism}, unroll={design.unroll}."
    )
    writer.line('#include "stencil_runtime.h"')
    writer.line()
    for d in range(design.spec.ndim):
        writer.line(f"#define W{d} {design.spec.grid_shape[d]}")
    writer.line()
    writer.raw(generate_pipe_declarations(design))
    names: Dict[Index, str] = {}
    for tile in design.tiles:
        writer.line()
        writer.raw(generate_kernel(design, tile))
        names[tile.index] = kernel_name(design, tile)
    return GeneratedProgram(
        kernel_source=writer.render(),
        host_source=generate_host_program(design, names),
        kernel_names=names,
    )
