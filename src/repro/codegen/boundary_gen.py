"""Stencil boundary generator (Section 5.2).

"For a specific stencil computation kernel, the stencil tile boundary
varies at different iterations and is dependent on three factors:
stencil shape, current iteration number and tile size."  This module
produces, for one tile of a design, the per-iteration loop bounds as a
function of the fused-iteration counter ``it`` — both as a Python-side
structure (used by the other generators and the tests) and as C macros
embedded in the generated kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.codegen.emit import CodeWriter
from repro.tiling.design import StencilDesign
from repro.tiling.tile import TileInfo


@dataclass(frozen=True)
class BoundarySpec:
    """Per-dimension loop bounds of one tile, buffer-relative.

    The compute loop of fused iteration ``it`` (0-based) covers
    ``[lo_base_d + lo_step_d * it, hi_base_d - hi_step_d * it)`` in the
    local buffer's coordinates: cone sides start wide and shrink by the
    radius every iteration; pipe-served and physical sides are fixed.

    Attributes:
        lo_base: lower bound at ``it = 0`` per dimension.
        lo_step: per-iteration lower-bound increment per dimension.
        hi_base: upper bound at ``it = 0`` per dimension.
        hi_step: per-iteration upper-bound decrement per dimension.
        buffer_shape: local buffer extents per dimension.
    """

    lo_base: Tuple[int, ...]
    lo_step: Tuple[int, ...]
    hi_base: Tuple[int, ...]
    hi_step: Tuple[int, ...]
    buffer_shape: Tuple[int, ...]

    def bounds_at(self, iteration: int) -> List[Tuple[int, int]]:
        """``[lo, hi)`` per dimension at 0-based fused iteration."""
        return [
            (
                self.lo_base[d] + self.lo_step[d] * iteration,
                self.hi_base[d] - self.hi_step[d] * iteration,
            )
            for d in range(len(self.lo_base))
        ]


def iteration_bounds(design: StencilDesign, tile: TileInfo) -> BoundarySpec:
    """Boundary spec of one tile in buffer-local coordinates.

    The local buffer covers the tile's read footprint.  At fused
    iteration ``it`` (0-based; the model's ``i = it + 1``) the computed
    footprint keeps a margin of ``r * it`` inside each cone side (it
    started needing ``r * h`` of context and consumes one radius per
    iteration), and a fixed margin of ``r`` inside each pipe-served
    side (the halo).
    """
    ndim = design.spec.ndim
    radius = design.radius
    counts = design.tile_grid.counts
    read_shape = design.tile_read_shape(tile)
    lo_base: List[int] = []
    lo_step: List[int] = []
    hi_base: List[int] = []
    hi_step: List[int] = []
    for d in range(ndim):
        low_outer = tile.index[d] == 0
        high_outer = tile.index[d] == counts[d] - 1
        if design.sharing:
            low_cone = low_outer
            high_cone = high_outer
        else:
            low_cone = high_cone = True
        # Cone sides: start at r (iteration 1 consumes one halo ring)
        # and shrink by r per iteration.  Pipe sides: fixed halo of r.
        lo_base.append(radius[d])
        lo_step.append(radius[d] if low_cone else 0)
        hi_base.append(read_shape[d] - radius[d])
        hi_step.append(radius[d] if high_cone else 0)
    return BoundarySpec(
        lo_base=tuple(lo_base),
        lo_step=tuple(lo_step),
        hi_base=tuple(hi_base),
        hi_step=tuple(hi_step),
        buffer_shape=read_shape,
    )


def generate_boundary_macros(
    design: StencilDesign, tile: TileInfo, prefix: str = "T"
) -> str:
    """C ``#define`` block encoding the tile's iteration boundary."""
    spec = iteration_bounds(design, tile)
    writer = CodeWriter()
    writer.comment(
        "Per-iteration compute bounds: dimension d covers "
        "[LO(d, it), HI(d, it)) in local-buffer coordinates."
    )
    for d in range(design.spec.ndim):
        writer.line(
            f"#define {prefix}_LO{d}(it) ({spec.lo_base[d]} + "
            f"{spec.lo_step[d]} * (it))"
        )
        writer.line(
            f"#define {prefix}_HI{d}(it) ({spec.hi_base[d]} - "
            f"{spec.hi_step[d]} * (it))"
        )
        writer.line(f"#define {prefix}_EXT{d} {spec.buffer_shape[d]}")
    return writer.render()
