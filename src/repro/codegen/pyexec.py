"""Execution of generated kernels on the emulated OpenCL runtime.

Takes the executable module emitted by :mod:`repro.codegen.pygen`,
``exec``-utes it, and drives its kernels the way the generated host
program drives the OpenCL ones: for every temporal block and region,
launch one kernel per tile, let them run concurrently (cooperatively
scheduled — kernels yield whenever a pipe would block), synchronize at
the block barrier, and ping-pong the global buffers.

This closes the code-generation loop: the *generated code itself* is
what computes, through real :class:`~repro.opencl.pipes.Pipe` objects,
and the result must match the naive reference bit-for-bit.
"""

from __future__ import annotations

import math
import types
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.codegen.kernel_gen import kernel_name
from repro.codegen.pygen import field_pipe_name, generate_python_module
from repro.errors import SimulationError, SpecificationError
from repro.opencl.pipes import Pipe
from repro.stencil.boundary import BoundaryPolicy
from repro.tiling.design import StencilDesign

State = Dict[str, np.ndarray]


class _KernelContext(types.SimpleNamespace):
    """What a generated kernel sees: buffers, pipes, origin, depth."""


class GeneratedDesignExecutor:
    """Compiles and runs a design's generated Python kernels."""

    def __init__(self, design: StencilDesign):
        if design.spec.boundary is not BoundaryPolicy.FROZEN:
            raise SpecificationError(
                "Generated-kernel execution supports the FROZEN boundary "
                f"policy only, got {design.spec.boundary}"
            )
        for grid_extent, region_extent in zip(
            design.spec.grid_shape, design.tile_grid.region_shape
        ):
            if grid_extent % region_extent != 0:
                raise SpecificationError(
                    f"Grid {design.spec.grid_shape} not divisible by "
                    f"region {design.tile_grid.region_shape}"
                )
        self.design = design
        self.spec = design.spec
        #: The emitted module source (inspectable, e.g. by tests).
        self.module_source = generate_python_module(design)
        namespace: Dict[str, object] = {}
        exec(compile(self.module_source, "<generated>", "exec"), namespace)
        self._kernels = {
            tile.index: namespace[kernel_name(design, tile)]
            for tile in design.tiles
        }

    # -- public API -----------------------------------------------------------

    def run(
        self,
        state: Optional[State] = None,
        aux: Optional[State] = None,
        iterations: Optional[int] = None,
    ) -> State:
        """Execute the generated kernels over the full workload."""
        total = self.spec.iterations if iterations is None else iterations
        current = {
            k: v.astype(self.spec.dtype, copy=True)
            for k, v in (state or self.spec.initial_state()).items()
        }
        aux_arrays = dict(aux or self.spec.aux_state())
        done = 0
        while done < total:
            h_block = min(self.design.fused_depth, total - done)
            current = self._run_block(current, aux_arrays, h_block)
            done += h_block
        return current

    # -- internals --------------------------------------------------------------

    def _region_origins(self) -> Iterator[Tuple[int, ...]]:
        counts = [
            g // r
            for g, r in zip(
                self.spec.grid_shape, self.design.tile_grid.region_shape
            )
        ]
        region = self.design.tile_grid.region_shape
        for flat in range(math.prod(counts)):
            origin = []
            rem = flat
            for count, extent in zip(reversed(counts), reversed(region)):
                origin.append((rem % count) * extent)
                rem //= count
            yield tuple(reversed(origin))

    def _make_pipes(self) -> Dict[str, Pipe]:
        pipes: Dict[str, Pipe] = {}
        for face in self.design.pipe_faces:
            for src, dst in (
                (face.low_index, face.high_index),
                (face.high_index, face.low_index),
            ):
                for field in self.spec.pattern.fields:
                    name = field_pipe_name(src, dst, face.dim, field)
                    pipes[name] = Pipe(
                        name, depth=max(4, self.design.pipe_depth)
                    )
        return pipes

    def _run_block(
        self, current: State, aux: State, h_block: int
    ) -> State:
        next_state = {k: v.copy() for k, v in current.items()}
        for origin in self._region_origins():
            pipes = self._make_pipes()
            ctx = _KernelContext(
                current=current,
                next=next_state,
                aux=aux,
                pipes=pipes,
                origin=origin,
                h_block=h_block,
            )
            self._schedule(
                [func(ctx) for func in self._kernels.values()], pipes
            )
        return next_state

    def _schedule(self, generators: List, pipes: Dict[str, Pipe]) -> None:
        """Round-robin cooperative scheduling until all kernels finish.

        Progress is measured by pipe activity and kernel completions; a
        full round with neither is a deadlock (a codegen bug), reported
        rather than spun on.
        """
        live = list(generators)
        while live:
            activity = sum(
                p.total_reads + p.total_writes for p in pipes.values()
            )
            still_live = []
            finished = 0
            for gen in live:
                try:
                    signal = next(gen)
                except StopIteration:
                    finished += 1
                    continue
                if signal == "done":
                    # The kernel's final yield: nothing follows it.
                    gen.close()
                    finished += 1
                else:
                    still_live.append(gen)
            new_activity = sum(
                p.total_reads + p.total_writes for p in pipes.values()
            )
            if still_live and not finished and new_activity == activity:
                raise SimulationError(
                    "Generated kernels deadlocked on pipe I/O "
                    f"({len(still_live)} kernels blocked)"
                )
            live = still_live


def execute_generated(
    design: StencilDesign,
    state: Optional[State] = None,
    aux: Optional[State] = None,
    iterations: Optional[int] = None,
) -> State:
    """Convenience wrapper around :class:`GeneratedDesignExecutor`."""
    return GeneratedDesignExecutor(design).run(state, aux, iterations)
